//! The real instrumentation implementation (`enabled` feature on).

use crate::snapshot::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot, Snapshot, BUCKETS};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// `true` when the crate was compiled with the `enabled` feature — i.e.
/// handles carry real atomics rather than zero-sized no-ops.
#[must_use]
pub fn is_enabled() -> bool {
    true
}

/// Process-wide runtime kill-switch. Compiled-in instrumentation records
/// only while this is `true` (the default). The batch-decode bench gate
/// flips it to measure the enabled build's own overhead.
static RECORDING: AtomicBool = AtomicBool::new(true);

/// Whether instrumentation currently records (see [`set_recording`]).
#[must_use]
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Turns runtime recording on or off process-wide. Handles stay valid
/// either way; recording calls become cheap early-outs while off.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// A monotonically increasing event count. Each handle is its own shard:
/// cloning shares the shard, requesting the same name from a registry
/// again creates a fresh one.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    fn new() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds `v` to the counter (relaxed; no-op while recording is off).
    pub fn add(&self, v: u64) {
        if v != 0 && recording() {
            self.0.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// This shard's current value (not merged across shards).
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time value (last write wins). Unlike counters and
/// histograms, all handles to one name share a single instance.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    fn new() -> Self {
        Gauge(Arc::new(AtomicI64::new(0)))
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        if recording() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` to the gauge.
    pub fn add(&self, delta: i64) {
        if delta != 0 && recording() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// The gauge's current value.
    #[must_use]
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// A fixed-bucket log-scale histogram of `u64` samples (see
/// [`crate::bucket_index`] for the bucket layout). Each handle is its own
/// shard, like [`Counter`].
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    fn new() -> Self {
        Histogram(Arc::new(HistogramCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }))
    }

    /// Records one sample (a handful of relaxed atomic ops; no-op while
    /// recording is off).
    pub fn record(&self, value: u64) {
        if !recording() {
            return;
        }
        let core = &*self.0;
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.min.fetch_min(value, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
        core.buckets[crate::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of samples recorded into this shard.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }
}

/// RAII span: measures the wall time between construction and drop and
/// records it, in nanoseconds, into the given histogram.
#[derive(Debug)]
pub struct SpanTimer {
    histogram: Histogram,
    start: Option<Instant>,
}

impl SpanTimer {
    /// Starts a span that reports into `histogram` on drop. While recording
    /// is off the clock is never read.
    #[must_use]
    pub fn start(histogram: Histogram) -> Self {
        SpanTimer {
            histogram,
            start: recording().then(Instant::now),
        }
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.histogram.record(ns);
        }
    }
}

/// Manual twin of [`SpanTimer`]: read the elapsed time yourself and decide
/// what to record. Returns 0 while recording is off (or when the crate is
/// compiled without instrumentation), so derived values stay deterministic
/// no-ops in uninstrumented builds.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Option<Instant>,
}

impl Stopwatch {
    /// Starts the stopwatch (never reads the clock while recording is off).
    #[must_use]
    pub fn start() -> Self {
        Stopwatch {
            start: recording().then(Instant::now),
        }
    }

    /// Nanoseconds since [`Stopwatch::start`], or 0 when not recording.
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        self.start.map_or(0, |s| {
            u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
    }
}

/// One registered name: all shards handed out for it.
#[derive(Debug)]
enum Slot {
    Counter(Vec<Counter>),
    Gauge(Gauge),
    Histogram(Vec<Histogram>),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

/// A thread-safe registry of named counters, gauges, and histograms.
///
/// Handle creation and snapshots take a mutex; recording through a handle
/// is lock-free. Instrumented crates use the process-wide [`global`]
/// registry; tests that want isolation construct their own.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    slots: Mutex<BTreeMap<String, Slot>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a fresh counter shard under `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let mut slots = self.slots.lock().expect("metrics registry poisoned");
        let slot = slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Counter(Vec::new()));
        match slot {
            Slot::Counter(shards) => {
                let shard = Counter::new();
                shards.push(shard.clone());
                shard
            }
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first use
    /// (gauges are shared, not sharded: last write wins).
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut slots = self.slots.lock().expect("metrics registry poisoned");
        let slot = slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Gauge(Gauge::new()));
        match slot {
            Slot::Gauge(gauge) => gauge.clone(),
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Registers a fresh histogram shard under `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut slots = self.slots.lock().expect("metrics registry poisoned");
        let slot = slots
            .entry(name.to_string())
            .or_insert_with(|| Slot::Histogram(Vec::new()));
        match slot {
            Slot::Histogram(shards) => {
                let shard = Histogram::new();
                shards.push(shard.clone());
                shard
            }
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Merges every shard of every metric into an owned [`Snapshot`]
    /// (sorted by name; counters and histogram buckets sum across shards,
    /// min/max take the extrema).
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let slots = self.slots.lock().expect("metrics registry poisoned");
        let mut snapshot = Snapshot::default();
        for (name, slot) in slots.iter() {
            match slot {
                Slot::Counter(shards) => snapshot.counters.push(CounterSnapshot {
                    name: name.clone(),
                    value: shards.iter().map(Counter::value).sum(),
                }),
                Slot::Gauge(gauge) => snapshot.gauges.push(GaugeSnapshot {
                    name: name.clone(),
                    value: gauge.value(),
                }),
                Slot::Histogram(shards) => {
                    let mut merged = HistogramSnapshot::empty(name.clone());
                    for shard in shards {
                        let core = &*shard.0;
                        merged.count += core.count.load(Ordering::Relaxed);
                        merged.sum = merged.sum.saturating_add(core.sum.load(Ordering::Relaxed));
                        merged.min = merged.min.min(core.min.load(Ordering::Relaxed));
                        merged.max = merged.max.max(core.max.load(Ordering::Relaxed));
                        for (b, bucket) in core.buckets.iter().enumerate() {
                            merged.buckets[b] += bucket.load(Ordering::Relaxed);
                        }
                    }
                    if merged.count == 0 {
                        merged.min = 0;
                    }
                    snapshot.histograms.push(merged);
                }
            }
        }
        snapshot
    }

    /// Zeroes every shard in place (handles stay valid). Meant for
    /// examples and tests that want a report scoped to one phase.
    pub fn reset(&self) {
        let slots = self.slots.lock().expect("metrics registry poisoned");
        for slot in slots.values() {
            match slot {
                Slot::Counter(shards) => {
                    for shard in shards {
                        shard.0.store(0, Ordering::Relaxed);
                    }
                }
                Slot::Gauge(gauge) => gauge.0.store(0, Ordering::Relaxed),
                Slot::Histogram(shards) => {
                    for shard in shards {
                        let core = &*shard.0;
                        core.count.store(0, Ordering::Relaxed);
                        core.sum.store(0, Ordering::Relaxed);
                        core.min.store(u64::MAX, Ordering::Relaxed);
                        core.max.store(0, Ordering::Relaxed);
                        for bucket in &core.buckets {
                            bucket.store(0, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
    }
}

/// The process-wide registry every instrumented crate reports into.
#[must_use]
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recording kill-switch is process-global, so every test that
    /// records (or toggles) takes this lock to avoid cross-test races.
    fn recording_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn counter_shards_merge_on_snapshot() {
        let _guard = recording_lock();
        let registry = MetricsRegistry::new();
        let a = registry.counter("test.counter");
        let b = registry.counter("test.counter");
        a.add(3);
        b.inc();
        b.inc();
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("test.counter"), Some(5));
    }

    #[test]
    fn concurrent_shard_writes_merge_exactly() {
        let _guard = recording_lock();
        let registry = MetricsRegistry::new();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let counter = registry.counter("test.concurrent");
                let hist = registry.histogram("test.concurrent_ns");
                scope.spawn(move || {
                    for i in 0..per_thread {
                        counter.inc();
                        hist.record(i);
                    }
                });
            }
        });
        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot.counter("test.concurrent"),
            Some(threads * per_thread)
        );
        let hist = snapshot.histogram("test.concurrent_ns").unwrap();
        assert_eq!(hist.count, threads * per_thread);
        assert_eq!(hist.min, 0);
        assert_eq!(hist.max, per_thread - 1);
        assert_eq!(
            hist.sum,
            threads * (per_thread * (per_thread - 1) / 2),
            "sums add across shards"
        );
        assert_eq!(hist.buckets.iter().sum::<u64>(), hist.count);
    }

    #[test]
    fn gauge_is_shared_not_sharded() {
        let _guard = recording_lock();
        let registry = MetricsRegistry::new();
        let a = registry.gauge("test.gauge");
        let b = registry.gauge("test.gauge");
        a.set(7);
        b.add(3);
        assert_eq!(a.value(), 10);
        assert_eq!(registry.snapshot().gauges[0].value, 10);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        let _ = registry.counter("test.kind");
        let _ = registry.gauge("test.kind");
    }

    #[test]
    fn histogram_tracks_extrema_and_buckets() {
        let _guard = recording_lock();
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("test.hist");
        for v in [0u64, 1, 1, 5, 1000, u64::MAX] {
            hist.record(v);
        }
        let snap = registry.snapshot();
        let h = snap.histogram("test.hist").unwrap();
        assert_eq!(h.count, 6);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, u64::MAX);
        assert_eq!(h.buckets[0], 1); // the 0 sample
        assert_eq!(h.buckets[1], 2); // the two 1s
        assert_eq!(h.buckets[64], 1); // u64::MAX
    }

    #[test]
    fn recording_toggle_suppresses_updates() {
        let _guard = recording_lock();
        let registry = MetricsRegistry::new();
        let counter = registry.counter("test.toggle");
        let hist = registry.histogram("test.toggle_ns");
        counter.inc();
        set_recording(false);
        counter.add(100);
        hist.record(1);
        let sw = Stopwatch::start();
        assert_eq!(sw.elapsed_ns(), 0, "stopwatch is inert while off");
        set_recording(true);
        counter.inc();
        assert_eq!(counter.value(), 2);
        assert_eq!(hist.count(), 0);
    }

    #[test]
    fn span_timer_records_on_drop() {
        let _guard = recording_lock();
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("test.span_ns");
        {
            let _span = SpanTimer::start(hist.clone());
            std::hint::black_box(());
        }
        assert_eq!(hist.count(), 1);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let _guard = recording_lock();
        let registry = MetricsRegistry::new();
        let counter = registry.counter("test.reset");
        let hist = registry.histogram("test.reset_ns");
        counter.add(5);
        hist.record(9);
        registry.reset();
        assert_eq!(registry.snapshot().counter("test.reset"), Some(0));
        counter.inc();
        hist.record(2);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("test.reset"), Some(1));
        let h = snap.histogram("test.reset_ns").unwrap();
        assert_eq!((h.count, h.min, h.max), (1, 2, 2));
    }
}
