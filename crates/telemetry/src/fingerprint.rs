//! Run-configuration fingerprints. Every benchmark banner and every
//! `RUN_REPORT.json` carries one so an artifact is attributable to the
//! exact configuration (code, workload size, seed, thread count, git
//! revision) that produced it.

use crate::json::JsonWriter;

/// Identifies the configuration that produced a benchmark or run report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// Code under test, e.g. `"secded(72,64)"`.
    pub code: String,
    /// Number of simulated chips.
    pub chips: usize,
    /// Messages per chip (or total messages for a bench loop).
    pub messages: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Resolved worker-thread count.
    pub threads: usize,
    /// Git revision of the working tree, when detectable.
    pub git_sha: Option<String>,
}

impl Fingerprint {
    /// A fingerprint for the given configuration, with the git SHA
    /// auto-detected (see [`detect_git_sha`]).
    #[must_use]
    pub fn new(code: &str, chips: usize, messages: usize, seed: u64, threads: usize) -> Self {
        Fingerprint {
            code: code.to_string(),
            chips,
            messages,
            seed,
            threads,
            git_sha: detect_git_sha(),
        }
    }

    /// One-line render for console banners, e.g.
    /// `code=secded(72,64) chips=1000 messages=4096 seed=7 threads=8 git=ab12cd34ef56`.
    #[must_use]
    pub fn line(&self) -> String {
        format!(
            "code={} chips={} messages={} seed={} threads={} git={}",
            self.code,
            self.chips,
            self.messages,
            self.seed,
            self.threads,
            self.git_sha.as_deref().unwrap_or("unknown"),
        )
    }

    /// Writes the fingerprint as a JSON object through the given writer.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.key("code");
        w.string(&self.code);
        w.key("chips");
        w.uint(self.chips as u64);
        w.key("messages");
        w.uint(self.messages as u64);
        w.key("seed");
        w.uint(self.seed);
        w.key("threads");
        w.uint(self.threads as u64);
        w.key("git_sha");
        match &self.git_sha {
            Some(sha) => w.string(sha),
            None => w.null(),
        }
        w.end_object();
    }

    /// The fingerprint as a standalone JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

/// Best-effort git revision of the current checkout: `GITHUB_SHA` or
/// `GIT_SHA` from the environment (truncated to 12 hex chars), else
/// `git rev-parse --short=12 HEAD`. Returns `None` when neither works —
/// callers render that as `"unknown"` / JSON `null`.
#[must_use]
pub fn detect_git_sha() -> Option<String> {
    for var in ["GITHUB_SHA", "GIT_SHA"] {
        if let Ok(sha) = std::env::var(var) {
            let sha = sha.trim().to_string();
            if sha.len() >= 7 && sha.chars().all(|c| c.is_ascii_hexdigit()) {
                return Some(sha.chars().take(12).collect());
            }
        }
    }
    let out = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let sha = String::from_utf8(out.stdout).ok()?.trim().to_string();
    (sha.len() >= 7 && sha.chars().all(|c| c.is_ascii_hexdigit())).then_some(sha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_json_render_all_fields() {
        let fp = Fingerprint {
            code: "secded(72,64)".to_string(),
            chips: 1000,
            messages: 4096,
            seed: 7,
            threads: 8,
            git_sha: Some("ab12cd34ef56".to_string()),
        };
        assert_eq!(
            fp.line(),
            "code=secded(72,64) chips=1000 messages=4096 seed=7 threads=8 git=ab12cd34ef56"
        );
        let json = fp.to_json();
        crate::json::validate(&json).expect("fingerprint JSON parses");
        assert!(json.contains("\"seed\": 7"));
        assert!(json.contains("\"git_sha\": \"ab12cd34ef56\""));
    }

    #[test]
    fn missing_sha_renders_as_unknown_and_null() {
        let fp = Fingerprint {
            code: "c".to_string(),
            chips: 1,
            messages: 1,
            seed: 0,
            threads: 1,
            git_sha: None,
        };
        assert!(fp.line().ends_with("git=unknown"));
        assert!(fp.to_json().contains("\"git_sha\": null"));
    }
}
