//! Hand-rolled JSON emission and validation. The workspace's serde shim is
//! a no-op marker, so every JSON artifact (BENCH files, `RUN_REPORT.json`)
//! is written by hand; [`JsonWriter`] keeps that correct (escaping, comma
//! placement) and [`validate`] lets examples and CI check the result
//! without a JSON dependency.

/// Escapes a string for inclusion inside a JSON string literal (without the
/// surrounding quotes).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Incremental JSON writer with automatic comma placement and two-space
/// indentation. Call [`JsonWriter::finish`] to take the document.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    // One entry per open container: `true` once it has at least one element
    // (so the next element is preceded by a comma).
    stack: Vec<bool>,
    // A key was just written; the next value continues its line.
    after_key: bool,
}

impl JsonWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn newline_indent(&mut self) {
        self.out.push('\n');
        for _ in 0..self.stack.len() {
            self.out.push_str("  ");
        }
    }

    fn before_value(&mut self) {
        if self.after_key {
            self.after_key = false;
            return;
        }
        if let Some(has_elems) = self.stack.last_mut() {
            if *has_elems {
                self.out.push(',');
            }
            *has_elems = true;
            self.newline_indent();
        }
    }

    /// Opens a `{`.
    pub fn begin_object(&mut self) {
        self.before_value();
        self.out.push('{');
        self.stack.push(false);
    }

    /// Closes the innermost `{`.
    pub fn end_object(&mut self) {
        let had_elems = self.stack.pop().unwrap_or(false);
        if had_elems {
            self.newline_indent();
        }
        self.out.push('}');
    }

    /// Opens a `[`.
    pub fn begin_array(&mut self) {
        self.before_value();
        self.out.push('[');
        self.stack.push(false);
    }

    /// Closes the innermost `[`.
    pub fn end_array(&mut self) {
        let had_elems = self.stack.pop().unwrap_or(false);
        if had_elems {
            self.newline_indent();
        }
        self.out.push(']');
    }

    /// Writes an object key; the next call writes its value.
    pub fn key(&mut self, name: &str) {
        self.before_value();
        self.out.push('"');
        self.out.push_str(&escape(name));
        self.out.push_str("\": ");
        self.after_key = true;
    }

    /// Writes a string value.
    pub fn string(&mut self, value: &str) {
        self.before_value();
        self.out.push('"');
        self.out.push_str(&escape(value));
        self.out.push('"');
    }

    /// Writes an unsigned integer value.
    pub fn uint(&mut self, value: u64) {
        self.before_value();
        self.out.push_str(&value.to_string());
    }

    /// Writes a signed integer value.
    pub fn int(&mut self, value: i64) {
        self.before_value();
        self.out.push_str(&value.to_string());
    }

    /// Writes a finite float value (non-finite values become `null`, which
    /// keeps the document valid JSON).
    pub fn float(&mut self, value: f64) {
        self.before_value();
        if value.is_finite() {
            // `{:?}` round-trips f64 and always includes a decimal point or
            // exponent, so the value re-parses as a float.
            self.out.push_str(&format!("{value:?}"));
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, value: bool) {
        self.before_value();
        self.out.push_str(if value { "true" } else { "false" });
    }

    /// Writes a `null` value.
    pub fn null(&mut self) {
        self.before_value();
        self.out.push_str("null");
    }

    /// Returns the finished document (with a trailing newline).
    #[must_use]
    pub fn finish(mut self) -> String {
        self.out.push('\n');
        self.out
    }
}

/// Validates that `input` is exactly one well-formed JSON value (plus
/// whitespace). Returns a byte offset and message on error. This is a
/// structural check — no value is materialized — sized for CI gates, not a
/// general-purpose parser.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}", pos = *pos)),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, "true"),
        Some(b'f') => parse_literal(bytes, pos, "false"),
        Some(b'n') => parse_literal(bytes, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}", pos = *pos)),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening '"'
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => match bytes.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    let hex = bytes
                        .get(*pos + 2..*pos + 6)
                        .ok_or_else(|| format!("truncated \\u escape at byte {pos}", pos = *pos))?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at byte {pos}", pos = *pos));
                    }
                    *pos += 6;
                }
                _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
            },
            c if c < 0x20 => {
                return Err(format!("raw control byte in string at {pos}", pos = *pos))
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(format!("expected digits at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(format!("expected fraction digits at byte {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(format!("expected exponent digits at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn writer_produces_valid_nested_documents() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("name");
        w.string("secded(72,64)");
        w.key("values");
        w.begin_array();
        w.uint(1);
        w.int(-2);
        w.float(0.5);
        w.bool(true);
        w.null();
        w.end_array();
        w.key("empty");
        w.begin_object();
        w.end_object();
        w.key("nested");
        w.begin_object();
        w.key("x");
        w.uint(7);
        w.end_object();
        w.end_object();
        let doc = w.finish();
        validate(&doc).expect("writer output parses");
        assert!(doc.contains("\"name\": \"secded(72,64)\""));
        assert!(doc.contains("\"empty\": {}"));
    }

    #[test]
    fn writer_nan_becomes_null() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("x");
        w.float(f64::NAN);
        w.end_object();
        let doc = w.finish();
        validate(&doc).expect("null keeps the doc valid");
        assert!(doc.contains("\"x\": null"));
    }

    #[test]
    fn validate_accepts_well_formed_inputs() {
        for ok in [
            "{}",
            "[]",
            "0",
            "-1.5e-3",
            "\"s\"",
            "true",
            "null",
            "{\"a\": [1, {\"b\": \"c\\n\"}], \"d\": false}",
            "  { \"u\": \"\\u00e9\" } ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn validate_rejects_malformed_inputs() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\": 1,}",
            "[1, 2",
            "[1 2]",
            "\"unterminated",
            "tru",
            "01x",
            "1.",
            "1e",
            "{} extra",
            "{\"a\" 1}",
            "{1: 2}",
            "\"bad \\q escape\"",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should be rejected");
        }
    }
}
