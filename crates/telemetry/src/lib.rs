//! # sfq-telemetry — workspace-wide metrics, span timers, and run reports
//!
//! Every layer of this workspace — the bit-sliced batch codec, the
//! Monte-Carlo link drivers, the synthesis pipeline — needs a uniform,
//! near-zero-overhead way to count, time, and export what it is doing, so
//! that tail latency, per-bucket decoder behavior, worker utilization, and
//! per-pass synthesis costs land in one machine-readable run report instead
//! of ad-hoc `println!`s. This crate is that layer. It is dependency-light
//! (std only) and instrumentation **never influences results**: metrics are
//! write-only from the instrumented code's point of view and no RNG stream
//! passes through this crate, so outputs are bit-identical with telemetry
//! compiled in or out (the workspace's determinism suite asserts this).
//!
//! ## Model
//!
//! * A [`MetricsRegistry`] maps metric **names** to metrics. Requesting a
//!   [`Counter`] or [`Histogram`] handle creates a fresh **shard** under
//!   that name: the handle owns its own atomics, so two worker threads that
//!   each requested their own handle never contend on the hot path
//!   (lock-free relaxed atomics; the registry lock is only taken at
//!   registration and snapshot time). [`MetricsRegistry::snapshot`] merges
//!   all shards of a name into one figure. [`Gauge`]s are single-instance
//!   (last write wins) rather than sharded.
//! * [`Histogram`]s use fixed log-scale buckets: bucket 0 holds the value
//!   `0`, bucket `b ≥ 1` holds `2^(b-1) ..= 2^b - 1` (65 buckets cover the
//!   whole `u64` range). Recording is a handful of relaxed atomic ops;
//!   quantiles are estimated from bucket upper bounds at snapshot time.
//! * [`SpanTimer`] is an RAII scope that records its elapsed nanoseconds
//!   into a histogram on drop; [`Stopwatch`] is its manual twin.
//! * [`Snapshot`] is an owned, orderable view of the registry, renderable
//!   as a JSON document (the workspace's `RUN_REPORT.json`) or a
//!   human-readable table. The serde shim in this workspace is a no-op
//!   marker, so JSON is emitted by hand through [`json`], which also ships
//!   a validator used by the report example and CI.
//! * [`Fingerprint`] identifies the configuration that produced an
//!   artifact (code, chips, messages, seed, threads, git SHA), so BENCH
//!   and RUN_REPORT files are attributable to a configuration.
//!
//! ## Feature gating
//!
//! The `enabled` feature (on by default, forwarded as `telemetry` by every
//! instrumented crate) selects the real implementation. With it off, every
//! handle is a zero-sized type and every operation an empty inline
//! function, so `--no-default-features` builds carry no instrumentation
//! cost at all. A runtime kill-switch ([`set_recording`]) additionally
//! lets an enabled build measure its own overhead (the batch-decode bench
//! gate uses it).
//!
//! ## Naming conventions
//!
//! `layer.subject.metric`, lower-case, dot-separated: `batch.decode.limbs`,
//! `link.decode_ns`, `fig5.chip_ns`, `synth.pass.factor-cancellation.ns`.
//! Histogram names that record durations end in `_ns`. See
//! `docs/OBSERVABILITY.md` for the full catalog and the how-to-add guide.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

mod fingerprint;
mod snapshot;

pub use fingerprint::{detect_git_sha, Fingerprint};
pub use snapshot::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot, Snapshot, BUCKETS};

#[cfg(feature = "enabled")]
mod enabled;
#[cfg(feature = "enabled")]
pub use enabled::{
    global, is_enabled, recording, set_recording, Counter, Gauge, Histogram, MetricsRegistry,
    SpanTimer, Stopwatch,
};

#[cfg(not(feature = "enabled"))]
mod noop;
#[cfg(not(feature = "enabled"))]
pub use noop::{
    global, is_enabled, recording, set_recording, Counter, Gauge, Histogram, MetricsRegistry,
    SpanTimer, Stopwatch,
};

/// Index of the histogram bucket a value falls into: bucket 0 is the value
/// `0`, bucket `b ≥ 1` covers `2^(b-1) ..= 2^b - 1`.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a histogram bucket (the value quantile
/// estimates report). Bucket 0 is `0`; bucket 64 saturates at `u64::MAX`.
#[must_use]
pub fn bucket_upper_bound(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        b if b >= 64 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        // Power-of-two boundaries: 2^k - 1 and 2^k land in adjacent buckets.
        for k in 1..64 {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v), k + 1, "2^{k}");
            assert_eq!(bucket_index(v - 1), k, "2^{k} - 1");
        }
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        for v in [0u64, 1, 2, 3, 100, 1 << 20, u64::MAX] {
            let b = bucket_index(v);
            assert!(v <= bucket_upper_bound(b), "{v} in bucket {b}");
            if b > 0 {
                assert!(v > bucket_upper_bound(b - 1), "{v} above bucket {}", b - 1);
            }
        }
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }
}
