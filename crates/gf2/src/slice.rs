//! Bit-sliced (lane-transposed) batches of GF(2) vectors.
//!
//! A [`BitSlice64`] stores a batch of `B` equal-length bit vectors
//! *transposed*: one lane per bit position, with vector `i`'s bit packed at
//! bit `i % 64` of limb `i / 64` of that lane. In this layout a single
//! `u64` XOR/AND operates on the same bit position of 64 independent vectors
//! at once, which is what makes the batch codec engine in the `sfq-batch`
//! crate run encode/syndrome/decode as a handful of word operations per 64
//! codewords instead of per-message loops.
//!
//! ```text
//! scalar:   msg0: b0 b1 b2 …      transposed:  lane0: msg0.b0 msg1.b0 … msg63.b0
//!           msg1: b0 b1 b2 …                   lane1: msg0.b1 msg1.b1 … msg63.b1
//!           …                                  …
//! ```
//!
//! [`BitSlice64::pack`] and [`BitSlice64::unpack`] convert between the scalar
//! [`BitVec`] representation and the transposed one.

use crate::vec::BitVec;
use crate::LIMB_BITS;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A batch of `batch` bit vectors of length `bits`, stored one lane per bit
/// position with 64 vectors per `u64` limb.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitSlice64 {
    bits: usize,
    batch: usize,
    words: usize,
    /// Lane-major storage: lane `b` occupies `lanes[b * words .. (b+1) * words]`.
    lanes: Vec<u64>,
}

impl BitSlice64 {
    /// Creates an all-zero batch of `batch` vectors of `bits` bits each.
    #[must_use]
    pub fn zeros(bits: usize, batch: usize) -> Self {
        let words = batch.div_ceil(LIMB_BITS);
        BitSlice64 {
            bits,
            batch,
            words,
            lanes: vec![0; bits * words],
        }
    }

    /// Packs a slice of equal-length vectors into transposed form.
    ///
    /// # Panics
    /// Panics if the vectors do not all have the same length.
    #[must_use]
    pub fn pack(vectors: &[BitVec]) -> Self {
        let bits = vectors.first().map_or(0, BitVec::len);
        let mut out = Self::zeros(bits, vectors.len());
        for (i, v) in vectors.iter().enumerate() {
            assert_eq!(v.len(), bits, "all vectors must have equal length");
            for b in 0..bits {
                if v.get(b) {
                    out.lanes[b * out.words + i / LIMB_BITS] |= 1u64 << (i % LIMB_BITS);
                }
            }
        }
        out
    }

    /// Unpacks the batch back into one [`BitVec`] per vector.
    #[must_use]
    pub fn unpack(&self) -> Vec<BitVec> {
        (0..self.batch).map(|i| self.extract(i)).collect()
    }

    /// Extracts vector `i` of the batch.
    ///
    /// # Panics
    /// Panics if `i >= self.batch()`.
    #[must_use]
    pub fn extract(&self, i: usize) -> BitVec {
        assert!(
            i < self.batch,
            "index {i} out of range for batch {}",
            self.batch
        );
        let (word, shift) = (i / LIMB_BITS, i % LIMB_BITS);
        (0..self.bits)
            .map(|b| (self.lanes[b * self.words + word] >> shift) & 1 == 1)
            .collect()
    }

    /// Vector length in bits (the number of lanes).
    #[must_use]
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Number of vectors in the batch.
    #[must_use]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Number of `u64` limbs per lane.
    #[must_use]
    pub fn words(&self) -> usize {
        self.words
    }

    /// Returns bit `bit` of vector `i`.
    ///
    /// # Panics
    /// Panics if out of range.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize, bit: usize) -> bool {
        assert!(i < self.batch && bit < self.bits, "index out of range");
        (self.lanes[bit * self.words + i / LIMB_BITS] >> (i % LIMB_BITS)) & 1 == 1
    }

    /// Sets bit `bit` of vector `i`.
    ///
    /// # Panics
    /// Panics if out of range.
    #[inline]
    pub fn set(&mut self, i: usize, bit: usize, value: bool) {
        assert!(i < self.batch && bit < self.bits, "index out of range");
        let limb = &mut self.lanes[bit * self.words + i / LIMB_BITS];
        let mask = 1u64 << (i % LIMB_BITS);
        if value {
            *limb |= mask;
        } else {
            *limb &= !mask;
        }
    }

    /// The lane of bit position `bit`: limb `w` holds that bit for vectors
    /// `64w .. 64w+63`.
    ///
    /// # Panics
    /// Panics if `bit >= self.bits()`.
    #[inline]
    #[must_use]
    pub fn lane(&self, bit: usize) -> &[u64] {
        assert!(
            bit < self.bits,
            "lane {bit} out of range for {} bits",
            self.bits
        );
        &self.lanes[bit * self.words..(bit + 1) * self.words]
    }

    /// Mutable access to the lane of bit position `bit`.
    ///
    /// Bits at batch indices `>= self.batch()` in the final limb must be left
    /// zero; [`tail_mask`](Self::tail_mask) gives the valid-bit mask of the
    /// last limb.
    ///
    /// # Panics
    /// Panics if `bit >= self.bits()`.
    #[inline]
    pub fn lane_mut(&mut self, bit: usize) -> &mut [u64] {
        assert!(
            bit < self.bits,
            "lane {bit} out of range for {} bits",
            self.bits
        );
        &mut self.lanes[bit * self.words..(bit + 1) * self.words]
    }

    /// The raw lane-major storage: lane `b` occupies words
    /// `[b * self.words() .. (b + 1) * self.words())`.
    ///
    /// Kernel hot loops index this directly — one flat bounds check per
    /// store instead of re-deriving a lane slice per access. The same
    /// tail-bit invariant as [`lane_mut`](Self::lane_mut) applies.
    #[inline]
    pub fn lane_words_mut(&mut self) -> &mut [u64] {
        &mut self.lanes
    }

    /// XORs `src`'s lane `src_bit` into `self`'s lane `dst_bit`.
    ///
    /// # Panics
    /// Panics if the batch sizes differ or either lane is out of range.
    pub fn xor_lane_from(&mut self, dst_bit: usize, src: &BitSlice64, src_bit: usize) {
        assert_eq!(self.batch, src.batch, "batch size mismatch");
        let dst = &mut self.lanes[dst_bit * self.words..(dst_bit + 1) * self.words];
        let src = &src.lanes[src_bit * src.words..(src_bit + 1) * src.words];
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
    }

    /// The mask of valid batch bits in the *last* limb of every lane (all
    /// ones when the batch size is a multiple of 64).
    #[must_use]
    pub fn tail_mask(&self) -> u64 {
        let rem = self.batch % LIMB_BITS;
        if rem == 0 {
            u64::MAX
        } else {
            (1u64 << rem) - 1
        }
    }

    /// Total number of set bits across the whole batch.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.lanes.iter().map(|l| l.count_ones() as usize).sum()
    }

    /// Re-shapes the batch in place to `bits × batch`, zeroing every lane.
    ///
    /// Reuses the existing limb allocation when it is large enough, which is
    /// what lets scratch buffers survive across Monte-Carlo iterations
    /// without touching the allocator.
    pub fn reset(&mut self, bits: usize, batch: usize) {
        let words = batch.div_ceil(LIMB_BITS);
        self.bits = bits;
        self.batch = batch;
        self.words = words;
        self.lanes.clear();
        self.lanes.resize(bits * words, 0);
    }

    /// Makes `self` a copy of `src` in place, reusing the limb allocation.
    pub fn copy_from(&mut self, src: &BitSlice64) {
        self.bits = src.bits;
        self.batch = src.batch;
        self.words = src.words;
        self.lanes.clear();
        self.lanes.extend_from_slice(&src.lanes);
    }

    /// Gathers limb `word` of every lane into `out[0..self.bits()]` — the
    /// transposed access pattern of word-at-a-time decode kernels, done once
    /// per limb instead of once per (entry, lane) pair.
    ///
    /// # Panics
    /// Panics if `word >= self.words()` or `out` is shorter than `bits`.
    #[inline]
    pub fn gather_word(&self, word: usize, out: &mut [u64]) {
        assert!(word < self.words, "word {word} out of range");
        assert!(out.len() >= self.bits, "gather buffer too small");
        for (bit, slot) in out.iter_mut().enumerate().take(self.bits) {
            *slot = self.lanes[bit * self.words + word];
        }
    }
}

/// AND-reduction of XNOR matches across bit-slices: starting from `init`,
/// folds `acc &= if pattern bit t { slices[t] } else { !slices[t] }` over all
/// slices, returning the 64-wide indicator of "this position's bits equal
/// `pattern`". Early-exits when the accumulator empties, which is the common
/// case for non-matching patterns.
///
/// This is the inner kernel of the column-matching batch decoder: `slices`
/// are the syndrome bit-slices of one limb and `pattern` is a column of the
/// parity-check matrix.
///
/// # Panics
/// Panics if more than 128 slices are passed (patterns are `u128`s).
#[inline]
#[must_use]
pub fn and_xnor_reduce(init: u64, slices: &[u64], pattern: u128) -> u64 {
    assert!(slices.len() <= 128, "patterns are u128: at most 128 slices");
    let mut acc = init;
    for (t, &slice) in slices.iter().enumerate() {
        acc &= if (pattern >> t) & 1 == 1 {
            slice
        } else {
            !slice
        };
        if acc == 0 {
            return 0;
        }
    }
    acc
}

/// OR-reduction across bit-slices: the 64-wide indicator of "any of these
/// bits is set". Used as the all-zero-syndrome fast path of the batch
/// decoder.
#[inline]
#[must_use]
pub fn or_reduce(slices: &[u64]) -> u64 {
    slices.iter().fold(0, |acc, &s| acc | s)
}

impl Default for BitSlice64 {
    /// An empty `0 × 0` batch — the natural initial state of reusable
    /// scratch buffers, re-shaped on first use via [`BitSlice64::reset`].
    fn default() -> Self {
        Self::zeros(0, 0)
    }
}

impl fmt::Debug for BitSlice64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitSlice64({} bits x {} vectors)", self.bits, self.batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch(bits: usize, batch: usize) -> Vec<BitVec> {
        // Deterministic pseudo-random vectors via an LCG.
        let mut state = 0x1234_5678_9abc_def0u64;
        (0..batch)
            .map(|_| {
                (0..bits)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        state >> 63 == 1
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for batch in [0usize, 1, 7, 63, 64, 65, 130] {
            let vectors = sample_batch(8, batch);
            let sliced = BitSlice64::pack(&vectors);
            assert_eq!(sliced.bits(), if batch == 0 { 0 } else { 8 });
            assert_eq!(sliced.batch(), batch);
            assert_eq!(sliced.unpack(), vectors, "batch {batch}");
        }
    }

    #[test]
    fn get_set_match_pack() {
        let vectors = sample_batch(7, 70);
        let sliced = BitSlice64::pack(&vectors);
        for (i, v) in vectors.iter().enumerate() {
            for b in 0..7 {
                assert_eq!(sliced.get(i, b), v.get(b), "vector {i} bit {b}");
            }
        }
        let mut modified = sliced.clone();
        modified.set(69, 6, !sliced.get(69, 6));
        assert_ne!(modified.extract(69), vectors[69]);
        modified.set(69, 6, sliced.get(69, 6));
        assert_eq!(modified.extract(69), vectors[69]);
    }

    #[test]
    fn lanes_are_transposed_columns() {
        let vectors = sample_batch(4, 65);
        let sliced = BitSlice64::pack(&vectors);
        assert_eq!(sliced.words(), 2);
        for b in 0..4 {
            let lane = sliced.lane(b);
            for (i, v) in vectors.iter().enumerate() {
                let bit = (lane[i / 64] >> (i % 64)) & 1 == 1;
                assert_eq!(bit, v.get(b));
            }
        }
    }

    #[test]
    fn xor_lane_from_is_bitwise_xor() {
        let a = sample_batch(3, 64);
        let b = sample_batch(3, 64);
        let mut sa = BitSlice64::pack(&a);
        let sb = BitSlice64::pack(&b);
        sa.xor_lane_from(0, &sb, 2);
        for i in 0..64 {
            assert_eq!(sa.get(i, 0), a[i].get(0) ^ b[i].get(2));
            assert_eq!(sa.get(i, 1), a[i].get(1));
        }
    }

    #[test]
    fn tail_mask_covers_partial_last_limb() {
        assert_eq!(BitSlice64::zeros(1, 64).tail_mask(), u64::MAX);
        assert_eq!(BitSlice64::zeros(1, 65).tail_mask(), 1);
        assert_eq!(BitSlice64::zeros(1, 70).tail_mask(), 0x3F);
    }

    #[test]
    fn count_ones_matches_scalar_weights() {
        let vectors = sample_batch(8, 100);
        let sliced = BitSlice64::pack(&vectors);
        let scalar: usize = vectors.iter().map(BitVec::weight).sum();
        assert_eq!(sliced.count_ones(), scalar);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn pack_rejects_ragged_input() {
        let _ = BitSlice64::pack(&[BitVec::zeros(3), BitVec::zeros(4)]);
    }

    #[test]
    fn reset_reshapes_and_zeroes_in_place() {
        let mut s = BitSlice64::pack(&sample_batch(8, 100));
        s.reset(5, 70);
        assert_eq!((s.bits(), s.batch(), s.words()), (5, 70, 2));
        assert_eq!(s.count_ones(), 0);
        // Growing past the old allocation still works.
        s.reset(16, 300);
        assert_eq!((s.bits(), s.batch(), s.words()), (16, 300, 5));
        assert_eq!(s.count_ones(), 0);
    }

    #[test]
    fn copy_from_matches_clone() {
        let src = BitSlice64::pack(&sample_batch(7, 130));
        let mut dst = BitSlice64::zeros(1, 1);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn gather_word_collects_lane_limbs() {
        let s = BitSlice64::pack(&sample_batch(6, 100));
        let mut out = vec![0u64; 6];
        for w in 0..s.words() {
            s.gather_word(w, &mut out);
            for (bit, &limb) in out.iter().enumerate() {
                assert_eq!(limb, s.lane(bit)[w], "word {w} bit {bit}");
            }
        }
    }

    #[test]
    fn and_xnor_reduce_matches_per_position_equality() {
        let vectors = sample_batch(5, 64);
        let s = BitSlice64::pack(&vectors);
        let mut slices = vec![0u64; 5];
        s.gather_word(0, &mut slices);
        for pattern in 0u128..32 {
            let mask = and_xnor_reduce(u64::MAX, &slices, pattern);
            for (i, v) in vectors.iter().enumerate() {
                let value = (0..5).fold(0u128, |acc, b| acc | (u128::from(v.get(b)) << b));
                assert_eq!(
                    (mask >> i) & 1 == 1,
                    value == pattern,
                    "pattern {pattern:05b} position {i}"
                );
            }
        }
        // The init mask gates the result.
        assert_eq!(and_xnor_reduce(0, &slices, 3), 0);
        // Zero slices: every position matches the (empty) pattern.
        assert_eq!(and_xnor_reduce(u64::MAX, &[], 0), u64::MAX);
    }

    #[test]
    fn or_reduce_is_any_bit_set() {
        assert_eq!(or_reduce(&[]), 0);
        assert_eq!(or_reduce(&[0, 0]), 0);
        assert_eq!(or_reduce(&[0b100, 0b001]), 0b101);
    }
}
