//! Dense GF(2) matrices and the linear-algebra routines used to build and
//! analyze linear block codes.

use crate::vec::BitVec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense matrix over GF(2), stored as one [`BitVec`] per row.
///
/// The matrix dimensions are fixed at construction. Rows are indexed first:
/// `m.get(r, c)`.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitMat {
    rows: usize,
    cols: usize,
    data: Vec<BitVec>,
}

impl BitMat {
    /// Creates an all-zero matrix with the given dimensions.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        BitMat {
            rows,
            cols,
            data: (0..rows).map(|_| BitVec::zeros(cols)).collect(),
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Panics
    /// Panics if the rows do not all have the same length.
    #[must_use]
    pub fn from_rows(rows: Vec<BitVec>) -> Self {
        let cols = rows.first().map_or(0, BitVec::len);
        for r in &rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
        }
        BitMat {
            rows: rows.len(),
            cols,
            data: rows,
        }
    }

    /// Builds a `rows × cols` matrix where each row is given as the low
    /// `cols` bits of a `u64` (bit `i` of the word is column `i`).
    ///
    /// # Panics
    /// Panics if `cols > 64` or the slice length differs from `rows`.
    #[must_use]
    pub fn from_rows_u64(rows: usize, cols: usize, words: &[u64]) -> Self {
        assert_eq!(words.len(), rows, "need exactly one word per row");
        Self::from_rows(words.iter().map(|&w| BitVec::from_u64(cols, w)).collect())
    }

    /// Parses a matrix from rows of `'0'`/`'1'` strings.
    ///
    /// # Panics
    /// Panics if rows have differing lengths or contain invalid characters.
    #[must_use]
    pub fn from_str_rows(rows: &[&str]) -> Self {
        Self::from_rows(rows.iter().map(|s| BitVec::from_str01(s)).collect())
    }

    /// Returns the number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Returns the number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns element `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of range.
    #[inline]
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> bool {
        self.data[r].get(c)
    }

    /// Sets element `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        self.data[r].set(c, value);
    }

    /// Returns row `r` as a [`BitVec`].
    ///
    /// # Panics
    /// Panics if out of range.
    #[must_use]
    pub fn row(&self, r: usize) -> &BitVec {
        &self.data[r]
    }

    /// Returns column `c` as a [`BitVec`].
    ///
    /// # Panics
    /// Panics if out of range.
    #[must_use]
    pub fn col(&self, c: usize) -> BitVec {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Returns an iterator over the rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &BitVec> {
        self.data.iter()
    }

    /// Returns the transpose.
    #[must_use]
    pub fn transpose(&self) -> BitMat {
        let mut t = BitMat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                if self.get(r, c) {
                    t.set(c, r, true);
                }
            }
        }
        t
    }

    /// Computes the row-vector × matrix product `v · M` over GF(2).
    ///
    /// `v` must have length equal to the number of rows; the result has length
    /// equal to the number of columns. This is the codeword = message × G
    /// operation of Eq. (2) in the paper.
    ///
    /// # Panics
    /// Panics if `v.len() != self.rows()`.
    #[must_use]
    pub fn left_mul_vec(&self, v: &BitVec) -> BitVec {
        assert_eq!(v.len(), self.rows, "vector length must equal row count");
        let mut acc = BitVec::zeros(self.cols);
        for r in 0..self.rows {
            if v.get(r) {
                acc.xor_assign(&self.data[r]);
            }
        }
        acc
    }

    /// Computes the matrix × column-vector product `M · v` over GF(2).
    ///
    /// `v` must have length equal to the number of columns; the result has
    /// length equal to the number of rows. This is the syndrome = H · rᵀ
    /// operation used by syndrome decoders.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    #[must_use]
    pub fn mul_vec(&self, v: &BitVec) -> BitVec {
        assert_eq!(v.len(), self.cols, "vector length must equal column count");
        (0..self.rows).map(|r| self.data[r].dot(v)).collect()
    }

    /// Computes the matrix product `self · other` over GF(2).
    ///
    /// # Panics
    /// Panics if the inner dimensions differ.
    #[must_use]
    pub fn mul(&self, other: &BitMat) -> BitMat {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let rows = (0..self.rows)
            .map(|r| {
                let mut acc = BitVec::zeros(other.cols);
                for c in 0..self.cols {
                    if self.get(r, c) {
                        acc.xor_assign(other.row(c));
                    }
                }
                acc
            })
            .collect();
        BitMat::from_rows(rows)
    }

    /// Horizontally concatenates `[self | other]`.
    ///
    /// # Panics
    /// Panics if the row counts differ.
    #[must_use]
    pub fn hconcat(&self, other: &BitMat) -> BitMat {
        assert_eq!(self.rows, other.rows, "row counts must agree");
        let rows = (0..self.rows)
            .map(|r| self.data[r].concat(&other.data[r]))
            .collect();
        BitMat::from_rows(rows)
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    #[must_use]
    pub fn vconcat(&self, other: &BitMat) -> BitMat {
        assert_eq!(self.cols, other.cols, "column counts must agree");
        let mut rows = self.data.clone();
        rows.extend(other.data.iter().cloned());
        BitMat::from_rows(rows)
    }

    /// Returns the submatrix selecting the given columns, in order.
    ///
    /// # Panics
    /// Panics if any column index is out of range.
    #[must_use]
    pub fn select_cols(&self, cols: &[usize]) -> BitMat {
        let rows = (0..self.rows)
            .map(|r| cols.iter().map(|&c| self.get(r, c)).collect())
            .collect();
        BitMat::from_rows(rows)
    }

    /// Reduces the matrix to reduced row-echelon form (RREF) in place and
    /// returns the list of pivot columns.
    pub fn rref_in_place(&mut self) -> Vec<usize> {
        let mut pivots = Vec::new();
        let mut pivot_row = 0;
        for col in 0..self.cols {
            if pivot_row >= self.rows {
                break;
            }
            // Find a row at or below pivot_row with a 1 in this column.
            let Some(src) = (pivot_row..self.rows).find(|&r| self.get(r, col)) else {
                continue;
            };
            self.data.swap(pivot_row, src);
            // Clear this column in every other row.
            let pivot = self.data[pivot_row].clone();
            for r in 0..self.rows {
                if r != pivot_row && self.get(r, col) {
                    self.data[r].xor_assign(&pivot);
                }
            }
            pivots.push(col);
            pivot_row += 1;
        }
        pivots
    }

    /// Returns the RREF of the matrix together with its pivot columns.
    #[must_use]
    pub fn rref(&self) -> (BitMat, Vec<usize>) {
        let mut m = self.clone();
        let pivots = m.rref_in_place();
        (m, pivots)
    }

    /// Returns the rank of the matrix.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rref().1.len()
    }

    /// Returns a basis of the null space `{ x : M · x = 0 }` as rows of a
    /// matrix with `cols()` columns. The returned matrix has
    /// `cols() - rank()` rows.
    #[must_use]
    pub fn null_space(&self) -> BitMat {
        let (rref, pivots) = self.rref();
        let pivot_set: Vec<bool> = {
            let mut v = vec![false; self.cols];
            for &p in &pivots {
                v[p] = true;
            }
            v
        };
        let free_cols: Vec<usize> = (0..self.cols).filter(|&c| !pivot_set[c]).collect();
        let mut basis = Vec::with_capacity(free_cols.len());
        for &free in &free_cols {
            let mut x = BitVec::zeros(self.cols);
            x.set(free, true);
            // For each pivot row, the pivot variable equals the sum of the free
            // variables appearing in that row.
            for (row_idx, &pivot_col) in pivots.iter().enumerate() {
                if rref.get(row_idx, free) {
                    x.set(pivot_col, true);
                }
            }
            basis.push(x);
        }
        if basis.is_empty() {
            BitMat::zeros(0, self.cols)
        } else {
            BitMat::from_rows(basis)
        }
    }

    /// Converts a full-rank generator matrix to systematic form `[I | P]` by
    /// row reduction and, if necessary, column permutation.
    ///
    /// Returns `(systematic_matrix, column_permutation)` where
    /// `column_permutation[i]` gives the original column now at position `i`.
    ///
    /// # Panics
    /// Panics if the matrix does not have full row rank.
    #[must_use]
    pub fn to_systematic(&self) -> (BitMat, Vec<usize>) {
        let (rref, pivots) = self.rref();
        assert_eq!(
            pivots.len(),
            self.rows,
            "matrix must have full row rank to be put in systematic form"
        );
        let mut perm: Vec<usize> = pivots.clone();
        let pivot_set: std::collections::HashSet<usize> = pivots.iter().copied().collect();
        perm.extend((0..self.cols).filter(|c| !pivot_set.contains(c)));
        (rref.select_cols(&perm), perm)
    }

    /// Returns `true` if every entry is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(BitVec::is_zero)
    }
}

impl fmt::Debug for BitMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMat({}x{}) [", self.rows, self.cols)?;
        for r in &self.data {
            writeln!(f, "  {}", r.to_string01())?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.data.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{}", r.to_string01())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hamming74_h() -> BitMat {
        // Parity-check matrix of Hamming(7,4) in one common form.
        BitMat::from_str_rows(&["1110100", "1101010", "1011001"])
    }

    #[test]
    fn identity_and_get_set() {
        let mut m = BitMat::identity(3);
        assert!(m.get(0, 0) && m.get(1, 1) && m.get(2, 2));
        assert!(!m.get(0, 1));
        m.set(0, 1, true);
        assert!(m.get(0, 1));
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn transpose_involution() {
        let m = hamming74_h();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().rows(), 7);
        assert_eq!(m.transpose().cols(), 3);
    }

    #[test]
    fn left_mul_vec_xors_selected_rows() {
        let g = BitMat::from_str_rows(&["1000", "0100", "0010", "0001"]);
        let v = BitVec::from_str01("1010");
        assert_eq!(g.left_mul_vec(&v).to_string01(), "1010");
        let g2 = BitMat::from_str_rows(&["1100", "0110"]);
        let v2 = BitVec::from_str01("11");
        assert_eq!(g2.left_mul_vec(&v2).to_string01(), "1010");
    }

    #[test]
    fn mul_vec_computes_syndrome() {
        let h = hamming74_h();
        // A valid codeword of Hamming(7,4) has zero syndrome. The all-ones
        // word is a codeword of the (7,4) Hamming code.
        let cw = BitVec::ones(7);
        assert!(h.mul_vec(&cw).is_zero());
        // A single error yields a nonzero syndrome equal to the flipped column.
        let mut r = cw.clone();
        r.flip(2);
        let syn = h.mul_vec(&r);
        assert_eq!(syn, h.col(2));
    }

    #[test]
    fn matrix_product_against_identity() {
        let m = hamming74_h();
        let i7 = BitMat::identity(7);
        assert_eq!(m.mul(&i7), m);
        let i3 = BitMat::identity(3);
        assert_eq!(i3.mul(&m), m);
    }

    #[test]
    fn rank_and_rref() {
        let m = hamming74_h();
        assert_eq!(m.rank(), 3);
        let singular = BitMat::from_str_rows(&["1100", "1100", "0011"]);
        assert_eq!(singular.rank(), 2);
        let (rref, pivots) = singular.rref();
        assert_eq!(pivots, vec![0, 2]);
        // Third row must be zero after reduction.
        assert!(rref.row(2).is_zero());
    }

    #[test]
    fn null_space_is_orthogonal() {
        let h = hamming74_h();
        let ns = h.null_space();
        assert_eq!(ns.rows(), 4); // 7 - rank 3
        for r in ns.iter_rows() {
            assert!(h.mul_vec(r).is_zero());
        }
        // The null-space rows must be linearly independent.
        assert_eq!(ns.rank(), 4);
    }

    #[test]
    fn systematic_form_has_identity_prefix() {
        let g = BitMat::from_str_rows(&["1110001", "1001101", "0101011", "1101110"]);
        assert_eq!(g.rank(), 4);
        let (sys, perm) = g.to_systematic();
        assert_eq!(perm.len(), 7);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(
                    sys.get(i, j),
                    i == j,
                    "identity prefix violated at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn hconcat_vconcat_shapes() {
        let a = BitMat::identity(2);
        let b = BitMat::zeros(2, 3);
        let h = a.hconcat(&b);
        assert_eq!((h.rows(), h.cols()), (2, 5));
        let c = BitMat::zeros(1, 5);
        let v = h.vconcat(&c);
        assert_eq!((v.rows(), v.cols()), (3, 5));
    }

    #[test]
    fn select_cols_reorders() {
        let m = BitMat::from_str_rows(&["100", "010", "001"]);
        let s = m.select_cols(&[2, 0, 1]);
        assert_eq!(s, BitMat::from_str_rows(&["010", "001", "100"]));
    }

    #[test]
    #[should_panic(expected = "full row rank")]
    fn systematic_form_requires_full_rank() {
        let g = BitMat::from_str_rows(&["1100", "1100"]);
        let _ = g.to_systematic();
    }
}
