//! Dense linear algebra over the binary field GF(2).
//!
//! This crate provides the arithmetic substrate used by the error-correction
//! code crates in this workspace: bit vectors ([`BitVec`]), bit matrices
//! ([`BitMat`]), and the standard operations needed to construct and analyze
//! linear block codes — matrix products, rank, reduced row-echelon form,
//! systematic form, null spaces, and exhaustive weight enumeration helpers.
//!
//! The representation is word-packed (`u64` limbs) so that the operations the
//! encoder evaluation loops perform millions of times (vector-matrix products,
//! Hamming-weight computation, syndrome lookups) stay cache friendly.
//!
//! # Example
//!
//! ```
//! use gf2::{BitMat, BitVec};
//!
//! // Generator matrix of the extended Hamming(8,4) code (paper, Eq. 1).
//! let g = BitMat::from_rows_u64(4, 8, &[
//!     0b1_0000_111 & 0xff, // placeholder rows; see the `ecc` crate for the real one
//!     0b0_0011_001,
//!     0b0_0101_010,
//!     0b0_1001_100,
//! ]);
//! let m = BitVec::from_bits(&[true, false, true, true]);
//! let c = g.left_mul_vec(&m);
//! assert_eq!(c.len(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod field;
pub mod limb;
pub mod mat;
pub mod slice;
pub mod vec;

pub use field::Gf2m;
pub use limb::{
    and_xnor_reduce_limb, byte_transpose_8x8, or_reduce_limb, syndrome_bytes,
    syndrome_bytes_inverse, transpose8x8, Limb,
};
pub use mat::BitMat;
pub use slice::{and_xnor_reduce, or_reduce, BitSlice64};
pub use vec::BitVec;

/// Number of bits stored per limb.
pub(crate) const LIMB_BITS: usize = 64;

/// Returns the number of `u64` limbs needed to store `bits` bits.
#[inline]
pub(crate) fn limbs_for(bits: usize) -> usize {
    bits.div_ceil(LIMB_BITS)
}

/// Computes the parity (XOR-reduction) of a 64-bit word.
#[inline]
#[must_use]
pub fn parity64(x: u64) -> bool {
    x.count_ones() & 1 == 1
}

/// Computes the binomial coefficient `n choose k` as a `u64`.
///
/// Used by the error-pattern enumeration analysis (Table I of the paper) and
/// by weight-distribution bounds. Panics on overflow, which cannot occur for
/// the short blocklengths (n ≤ 64) this workspace targets.
#[must_use]
pub fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u64 = 1;
    for i in 0..k {
        acc = acc.checked_mul(n - i).expect("binomial overflow") / (i + 1);
    }
    acc
}

/// Iterator over all bit patterns of length `n` with exactly `weight` ones.
///
/// Patterns are yielded as `u64` masks in increasing numeric order (Gosper's
/// hack). `n` must be at most 63.
#[derive(Debug, Clone)]
pub struct WeightPatterns {
    current: Option<u64>,
    limit: u64,
}

impl WeightPatterns {
    /// Creates an iterator over all length-`n` patterns of the given weight.
    ///
    /// # Panics
    /// Panics if `n > 63` or `weight > n`.
    #[must_use]
    pub fn new(n: usize, weight: usize) -> Self {
        assert!(n <= 63, "WeightPatterns supports n <= 63");
        assert!(weight <= n, "weight must not exceed n");
        let start = if weight == 0 { 0 } else { (1u64 << weight) - 1 };
        WeightPatterns {
            current: Some(start),
            limit: 1u64 << n,
        }
    }
}

impl Iterator for WeightPatterns {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let cur = self.current?;
        if cur >= self.limit {
            self.current = None;
            return None;
        }
        // Gosper's hack: next integer with the same popcount.
        if cur == 0 {
            self.current = None;
            return Some(0);
        }
        let c = cur & cur.wrapping_neg();
        let r = cur + c;
        let next = (((r ^ cur) >> 2) / c) | r;
        self.current = Some(next);
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_small_values() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(7, 3), 35);
        assert_eq!(binomial(8, 4), 70);
        assert_eq!(binomial(38, 2), 703);
        assert_eq!(binomial(4, 7), 0);
    }

    #[test]
    fn parity64_matches_popcount() {
        assert!(!parity64(0));
        assert!(parity64(1));
        assert!(!parity64(0b11));
        assert!(parity64(0b111));
        assert!(!parity64(u64::MAX));
    }

    #[test]
    fn weight_patterns_count_matches_binomial() {
        for n in 0..=10usize {
            for w in 0..=n {
                let count = WeightPatterns::new(n, w).count() as u64;
                assert_eq!(count, binomial(n as u64, w as u64), "n={n} w={w}");
            }
        }
    }

    #[test]
    fn weight_patterns_all_have_requested_weight() {
        for pattern in WeightPatterns::new(8, 3) {
            assert_eq!(pattern.count_ones(), 3);
            assert!(pattern < (1 << 8));
        }
    }

    #[test]
    fn weight_patterns_zero_weight_is_single_zero() {
        let v: Vec<u64> = WeightPatterns::new(6, 0).collect();
        assert_eq!(v, vec![0]);
    }

    #[test]
    fn limbs_for_boundary_cases() {
        assert_eq!(limbs_for(0), 0);
        assert_eq!(limbs_for(1), 1);
        assert_eq!(limbs_for(64), 1);
        assert_eq!(limbs_for(65), 2);
        assert_eq!(limbs_for(128), 2);
        assert_eq!(limbs_for(129), 3);
    }
}
