//! Limb abstraction and bit-transpose primitives for wide decode kernels.
//!
//! [`BitSlice64`](crate::BitSlice64) stores batches as `u64` limbs — 64
//! messages per word. The batch decode kernels in `sfq-batch` want to chew
//! through *several* of those words per reduction step: one AND/XNOR over a
//! `u128` limb processes 128 messages, and a 4-word software-SIMD limb
//! processes 256 (lowered to vector instructions by the backend). The
//! [`Limb`] trait is the abstraction those kernels are generic over: a fixed
//! number of consecutive `u64` words loaded, combined with bitwise ops, and
//! stored back. Implementations for `u64` and `u128` live here; wider
//! software-SIMD limbs live next to the kernels that use them (e.g. the
//! 256-bit limb in `sfq-batch`'s kernel module) and only need to implement
//! this trait.
//!
//! The transpose primitives serve the *direct-dispatch* kernels for codes
//! with redundancy `r ≤ 8`: per `u64` limb, the `r` syndrome bit-slices are
//! bit-transposed into one syndrome **byte per lane** (the classic 8×8
//! bit-matrix transpose, applied blockwise), which then indexes a 256-entry
//! action table directly — no per-entry pattern matching at all.

use crate::LIMB_BITS;

/// A decode-kernel limb: [`Self::WORDS`] consecutive `u64` words of a
/// [`BitSlice64`](crate::BitSlice64) lane, combined with bitwise operations.
///
/// All operations are lane-wise (no carries cross word boundaries), so a
/// kernel written against `Limb` produces bit-identical results at every
/// width — the property the workspace's forced-dispatch equivalence suite
/// asserts exhaustively.
pub trait Limb: Copy + Eq {
    /// Number of consecutive `u64` words this limb covers.
    const WORDS: usize;
    /// The all-zero limb.
    const ZERO: Self;

    /// Loads [`Self::WORDS`] words from the front of `words`.
    ///
    /// # Panics
    /// Panics if `words` is shorter than [`Self::WORDS`].
    fn load(words: &[u64]) -> Self;

    /// Stores the limb into the front of `words`.
    ///
    /// # Panics
    /// Panics if `words` is shorter than [`Self::WORDS`].
    fn store(self, words: &mut [u64]);

    /// XORs the limb into the front of `words`.
    ///
    /// # Panics
    /// Panics if `words` is shorter than [`Self::WORDS`].
    fn xor_into(self, words: &mut [u64]);

    /// Bitwise AND.
    #[must_use]
    fn and(self, other: Self) -> Self;

    /// Bitwise OR.
    #[must_use]
    fn or(self, other: Self) -> Self;

    /// Bitwise XOR.
    #[must_use]
    fn xor(self, other: Self) -> Self;

    /// Bitwise complement.
    #[must_use]
    fn not(self) -> Self;

    /// `true` when no bit is set (the kernels' early-exit test).
    fn is_zero(self) -> bool;

    /// Number of set bits (lane-count telemetry).
    fn count_ones(self) -> u32;
}

impl Limb for u64 {
    const WORDS: usize = 1;
    const ZERO: Self = 0;

    #[inline]
    fn load(words: &[u64]) -> Self {
        words[0]
    }

    #[inline]
    fn store(self, words: &mut [u64]) {
        words[0] = self;
    }

    #[inline]
    fn xor_into(self, words: &mut [u64]) {
        words[0] ^= self;
    }

    #[inline]
    fn and(self, other: Self) -> Self {
        self & other
    }

    #[inline]
    fn or(self, other: Self) -> Self {
        self | other
    }

    #[inline]
    fn xor(self, other: Self) -> Self {
        self ^ other
    }

    #[inline]
    fn not(self) -> Self {
        !self
    }

    #[inline]
    fn is_zero(self) -> bool {
        self == 0
    }

    #[inline]
    fn count_ones(self) -> u32 {
        u64::count_ones(self)
    }
}

impl Limb for u128 {
    const WORDS: usize = 2;
    const ZERO: Self = 0;

    #[inline]
    fn load(words: &[u64]) -> Self {
        u128::from(words[0]) | (u128::from(words[1]) << LIMB_BITS)
    }

    #[inline]
    fn store(self, words: &mut [u64]) {
        words[0] = self as u64;
        words[1] = (self >> LIMB_BITS) as u64;
    }

    #[inline]
    fn xor_into(self, words: &mut [u64]) {
        words[0] ^= self as u64;
        words[1] ^= (self >> LIMB_BITS) as u64;
    }

    #[inline]
    fn and(self, other: Self) -> Self {
        self & other
    }

    #[inline]
    fn or(self, other: Self) -> Self {
        self | other
    }

    #[inline]
    fn xor(self, other: Self) -> Self {
        self ^ other
    }

    #[inline]
    fn not(self) -> Self {
        !self
    }

    #[inline]
    fn is_zero(self) -> bool {
        self == 0
    }

    #[inline]
    fn count_ones(self) -> u32 {
        u128::count_ones(self)
    }
}

/// AND-reduction of XNOR matches across bit-slices, generic over the limb
/// width — the wide-limb counterpart of
/// [`and_xnor_reduce`](crate::and_xnor_reduce). Starting from `init`, folds
/// `acc &= if pattern bit t { slices[t] } else { !slices[t] }`, early-exiting
/// when the accumulator empties.
#[inline]
#[must_use]
pub fn and_xnor_reduce_limb<L: Limb>(init: L, slices: &[L], pattern: u128) -> L {
    let mut acc = init;
    for (t, &slice) in slices.iter().enumerate() {
        acc = acc.and(if (pattern >> t) & 1 == 1 {
            slice
        } else {
            slice.not()
        });
        if acc.is_zero() {
            return acc;
        }
    }
    acc
}

/// OR-reduction across bit-slices, generic over the limb width — the
/// wide-limb counterpart of [`or_reduce`](crate::or_reduce).
#[inline]
#[must_use]
pub fn or_reduce_limb<L: Limb>(slices: &[L]) -> L {
    slices.iter().fold(L::ZERO, |acc, &s| acc.or(s))
}

/// Exchanges the bits of `x` selected by `mask` with the bits `shift`
/// positions above them (a delta swap, the primitive step of in-register
/// transposes).
#[inline]
const fn delta_swap(x: u64, mask: u64, shift: u32) -> u64 {
    let t = ((x >> shift) ^ x) & mask;
    x ^ t ^ (t << shift)
}

/// Transposes a `u64` viewed as an 8×8 bit matrix (bit `8r + c` = row `r`,
/// column `c`). An involution: applying it twice is the identity.
#[inline]
#[must_use]
pub const fn transpose8x8(x: u64) -> u64 {
    let x = delta_swap(x, 0x00AA_00AA_00AA_00AA, 7);
    let x = delta_swap(x, 0x0000_CCCC_0000_CCCC, 14);
    delta_swap(x, 0x0000_0000_F0F0_F0F0, 28)
}

/// Transposes eight words viewed as an 8×8 matrix of *bytes* (`words[r]`
/// byte `c` ↔ `words[c]` byte `r`). An involution.
#[inline]
pub fn byte_transpose_8x8(words: &mut [u64; 8]) {
    // Delta swaps across word pairs, one round per index bit: after all
    // three rounds, byte c of word r holds what byte r of word c held.
    for shift in [1usize, 2, 4] {
        let mask = match shift {
            1 => 0x00FF_00FF_00FF_00FFu64,
            2 => 0x0000_FFFF_0000_FFFFu64,
            _ => 0x0000_0000_FFFF_FFFFu64,
        };
        let bits = (shift * 8) as u32;
        let mut r = 0;
        while r < 8 {
            for i in r..r + shift {
                let a = words[i];
                let b = words[i + shift];
                let t = ((a >> bits) ^ b) & mask;
                words[i + shift] = b ^ t;
                words[i] = a ^ (t << bits);
            }
            r += 2 * shift;
        }
    }
}

/// Bit-transposes up to eight syndrome slices into per-lane syndrome bytes:
/// on return, byte `j` of `out[q]` holds the syndrome of lane `8q + j`, with
/// slice `t` contributing bit `t` (slices beyond `slices.len()` read as
/// zero). This is the front end of the direct-dispatch decode kernels for
/// `r ≤ 8` codes: one transpose per limb replaces per-entry syndrome
/// matching.
///
/// # Panics
/// Panics if more than 8 slices are passed (syndrome bytes are 8 bits).
#[inline]
pub fn syndrome_bytes(slices: &[u64], out: &mut [u64; 8]) {
    assert!(
        slices.len() <= 8,
        "syndrome bytes hold at most 8 slice bits"
    );
    out.fill(0);
    out[..slices.len()].copy_from_slice(slices);
    byte_transpose_8x8(out);
    for word in out.iter_mut() {
        *word = transpose8x8(*word);
    }
}

/// The inverse of [`syndrome_bytes`]: scatters per-lane syndrome bytes back
/// into `slices.len()` syndrome slices. `syndrome_bytes` followed by
/// `syndrome_bytes_inverse` is the identity on any slice set (asserted by
/// the workspace's transpose proptests); bytes' bits at positions `>=
/// slices.len()` must be zero for the round trip to be exact.
///
/// # Panics
/// Panics if more than 8 slices are requested.
#[inline]
pub fn syndrome_bytes_inverse(bytes: &[u64; 8], slices: &mut [u64]) {
    assert!(
        slices.len() <= 8,
        "syndrome bytes hold at most 8 slice bits"
    );
    let mut work = *bytes;
    for word in work.iter_mut() {
        *word = transpose8x8(*word);
    }
    byte_transpose_8x8(&mut work);
    slices.copy_from_slice(&work[..slices.len()]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_words(n: usize, mut state: u64) -> Vec<u64> {
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state
            })
            .collect()
    }

    #[test]
    fn u64_and_u128_limbs_roundtrip_loads_and_stores() {
        let words = lcg_words(4, 1);
        let a = <u64 as Limb>::load(&words);
        assert_eq!(a, words[0]);
        let b = <u128 as Limb>::load(&words);
        assert_eq!(b, u128::from(words[0]) | (u128::from(words[1]) << 64));
        let mut out = vec![0u64; 2];
        b.store(&mut out);
        assert_eq!(out, &words[..2]);
        b.xor_into(&mut out);
        assert_eq!(out, vec![0, 0]);
    }

    #[test]
    fn limb_bit_ops_match_word_ops() {
        let w = lcg_words(4, 7);
        let (a, b) = (<u128 as Limb>::load(&w[..2]), <u128 as Limb>::load(&w[2..]));
        let mut and = vec![0u64; 2];
        a.and(b).store(&mut and);
        assert_eq!(and, vec![w[0] & w[2], w[1] & w[3]]);
        let mut or = vec![0u64; 2];
        a.or(b).store(&mut or);
        assert_eq!(or, vec![w[0] | w[2], w[1] | w[3]]);
        let mut xor = vec![0u64; 2];
        a.xor(b).store(&mut xor);
        assert_eq!(xor, vec![w[0] ^ w[2], w[1] ^ w[3]]);
        assert_eq!(
            a.not().count_ones() + a.count_ones(),
            128,
            "complement partitions the bits"
        );
        assert!(<u128 as Limb>::ZERO.is_zero());
        assert!(!a.is_zero());
    }

    #[test]
    fn wide_reduces_match_scalar_reduces() {
        use crate::{and_xnor_reduce, or_reduce};
        let words = lcg_words(10, 99);
        let scalar: Vec<u64> = words.iter().step_by(2).copied().collect();
        let wide: Vec<u128> = words.chunks(2).map(<u128 as Limb>::load).collect();
        assert_eq!(or_reduce_limb(&wide) as u64, or_reduce(&scalar));
        for pattern in [0u128, 0b10110, 0b01101, 0b11111] {
            let got = and_xnor_reduce_limb(u128::MAX, &wide, pattern);
            assert_eq!(
                got as u64,
                and_xnor_reduce(u64::MAX, &scalar, pattern),
                "pattern {pattern:b} low words"
            );
        }
    }

    /// Naive reference: bit (8r + c) of the transposed word is bit (8c + r).
    fn transpose8x8_naive(x: u64) -> u64 {
        let mut out = 0u64;
        for r in 0..8 {
            for c in 0..8 {
                if (x >> (8 * r + c)) & 1 == 1 {
                    out |= 1 << (8 * c + r);
                }
            }
        }
        out
    }

    #[test]
    fn transpose8x8_matches_naive_and_is_involutive() {
        for &x in &lcg_words(50, 3) {
            let t = transpose8x8(x);
            assert_eq!(t, transpose8x8_naive(x));
            assert_eq!(transpose8x8(t), x);
        }
        assert_eq!(transpose8x8(0), 0);
        assert_eq!(transpose8x8(u64::MAX), u64::MAX);
    }

    #[test]
    fn byte_transpose_matches_naive_and_is_involutive() {
        let words: Vec<u64> = lcg_words(8, 11);
        let mut got: [u64; 8] = words.clone().try_into().unwrap();
        byte_transpose_8x8(&mut got);
        for (r, &row) in got.iter().enumerate() {
            for (c, &word) in words.iter().enumerate() {
                let expect = (word >> (8 * r)) & 0xFF;
                assert_eq!((row >> (8 * c)) & 0xFF, expect, "byte ({r},{c})");
            }
        }
        byte_transpose_8x8(&mut got);
        assert_eq!(got.as_slice(), words.as_slice());
    }

    #[test]
    fn syndrome_bytes_gathers_per_lane_syndromes() {
        for r in 1..=8usize {
            let slices = lcg_words(r, r as u64 * 13 + 1);
            let mut bytes = [0u64; 8];
            syndrome_bytes(&slices, &mut bytes);
            for lane in 0..64usize {
                let expect: u64 = (0..r)
                    .map(|t| ((slices[t] >> lane) & 1) << t)
                    .fold(0, |a, b| a | b);
                let got = (bytes[lane / 8] >> (8 * (lane % 8))) & 0xFF;
                assert_eq!(got, expect, "r={r} lane {lane}");
            }
            let mut back = vec![0u64; r];
            syndrome_bytes_inverse(&bytes, &mut back);
            assert_eq!(back, slices, "r={r} inverse");
        }
    }
}
