//! Word-packed bit vectors over GF(2).

use crate::{limbs_for, LIMB_BITS};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitXor, BitXorAssign};

/// A fixed-length vector over GF(2), packed 64 bits per limb.
///
/// Addition over GF(2) is XOR; the scalar product of two vectors is the
/// parity of their AND. Both are exposed through operator overloads and
/// explicit methods.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVec {
    len: usize,
    limbs: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero vector of length `len`.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            limbs: vec![0; limbs_for(len)],
        }
    }

    /// Creates an all-one vector of length `len`.
    #[must_use]
    pub fn ones(len: usize) -> Self {
        let mut v = Self::zeros(len);
        for i in 0..len {
            v.set(i, true);
        }
        v
    }

    /// Creates a vector from a slice of booleans.
    #[must_use]
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut v = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            v.set(i, b);
        }
        v
    }

    /// Creates a length-`len` vector from the low `len` bits of `word`.
    ///
    /// Bit `i` of `word` becomes element `i` of the vector.
    ///
    /// # Panics
    /// Panics if `len > 64`.
    #[must_use]
    pub fn from_u64(len: usize, word: u64) -> Self {
        assert!(len <= 64, "from_u64 supports at most 64 bits");
        let mut v = Self::zeros(len);
        if len > 0 {
            let mask = if len == 64 {
                u64::MAX
            } else {
                (1u64 << len) - 1
            };
            if !v.limbs.is_empty() {
                v.limbs[0] = word & mask;
            }
        }
        v
    }

    /// Parses a vector from a string of `'0'`/`'1'` characters (index 0 first).
    ///
    /// Whitespace and underscores are ignored.
    ///
    /// # Panics
    /// Panics if the string contains any other character.
    #[must_use]
    pub fn from_str01(s: &str) -> Self {
        let bits: Vec<bool> = s
            .chars()
            .filter(|c| !c.is_whitespace() && *c != '_')
            .map(|c| match c {
                '0' => false,
                '1' => true,
                other => panic!("invalid bit character {other:?}"),
            })
            .collect();
        Self::from_bits(&bits)
    }

    /// Returns the length of the vector in bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector has length zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "index {i} out of range for length {}",
            self.len
        );
        (self.limbs[i / LIMB_BITS] >> (i % LIMB_BITS)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "index {i} out of range for length {}",
            self.len
        );
        let limb = &mut self.limbs[i / LIMB_BITS];
        let mask = 1u64 << (i % LIMB_BITS);
        if value {
            *limb |= mask;
        } else {
            *limb &= !mask;
        }
    }

    /// Flips bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(
            i < self.len,
            "index {i} out of range for length {}",
            self.len
        );
        self.limbs[i / LIMB_BITS] ^= 1u64 << (i % LIMB_BITS);
    }

    /// Returns the Hamming weight (number of ones).
    #[must_use]
    pub fn weight(&self) -> usize {
        self.limbs.iter().map(|l| l.count_ones() as usize).sum()
    }

    /// Returns the Hamming distance to `other`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    #[must_use]
    pub fn hamming_distance(&self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "length mismatch");
        self.limbs
            .iter()
            .zip(&other.limbs)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Returns the GF(2) inner product (parity of the AND) with `other`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    #[must_use]
    pub fn dot(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "length mismatch");
        let acc: u64 = self
            .limbs
            .iter()
            .zip(&other.limbs)
            .fold(0, |acc, (a, b)| acc ^ (a & b));
        acc.count_ones() & 1 == 1
    }

    /// Returns `true` if all bits are zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Returns the vector as a `u64`, interpreting element `i` as bit `i`.
    ///
    /// # Panics
    /// Panics if the length exceeds 64.
    #[must_use]
    pub fn to_u64(&self) -> u64 {
        assert!(self.len <= 64, "to_u64 supports at most 64 bits");
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Returns the vector as a `u128`, interpreting element `i` as bit `i`.
    ///
    /// Used by the batch codec engine, whose masks cover codes up to
    /// `n = 128` (wide SEC-DED words exceed one limb).
    ///
    /// # Panics
    /// Panics if the length exceeds 128.
    #[must_use]
    pub fn to_u128(&self) -> u128 {
        assert!(self.len <= 128, "to_u128 supports at most 128 bits");
        let lo = u128::from(self.limbs.first().copied().unwrap_or(0));
        let hi = u128::from(self.limbs.get(1).copied().unwrap_or(0));
        lo | (hi << 64)
    }

    /// Creates a length-`len` vector from the low `len` bits of `word`.
    ///
    /// Bit `i` of `word` becomes element `i` of the vector.
    ///
    /// # Panics
    /// Panics if `len > 128`.
    #[must_use]
    pub fn from_u128(len: usize, word: u128) -> Self {
        assert!(len <= 128, "from_u128 supports at most 128 bits");
        let mut v = Self::zeros(len);
        for limb_index in 0..v.limbs.len() {
            let mut limb = (word >> (64 * limb_index)) as u64;
            // Mask away bits beyond `len` in the last limb.
            let bits_here = (len - 64 * limb_index).min(64);
            if bits_here < 64 {
                limb &= (1u64 << bits_here) - 1;
            }
            v.limbs[limb_index] = limb;
        }
        v
    }

    /// Returns the bits as a `Vec<bool>`.
    #[must_use]
    pub fn to_bits(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Returns a sub-vector covering `range.start..range.end`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or reversed.
    #[must_use]
    pub fn slice(&self, range: std::ops::Range<usize>) -> BitVec {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "range out of bounds"
        );
        let mut out = BitVec::zeros(range.end - range.start);
        for (j, i) in range.enumerate() {
            out.set(j, self.get(i));
        }
        out
    }

    /// Concatenates `self` with `other`, returning a new vector.
    #[must_use]
    pub fn concat(&self, other: &BitVec) -> BitVec {
        let mut out = BitVec::zeros(self.len + other.len);
        for i in 0..self.len {
            out.set(i, self.get(i));
        }
        for i in 0..other.len {
            out.set(self.len + i, other.get(i));
        }
        out
    }

    /// Returns the indices of the set bits, in increasing order.
    #[must_use]
    pub fn support(&self) -> Vec<usize> {
        (0..self.len).filter(|&i| self.get(i)).collect()
    }

    /// Iterates over the bits from index 0 upward.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// XORs `other` into `self` in place.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn xor_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch");
        for (a, b) in self.limbs.iter_mut().zip(&other.limbs) {
            *a ^= b;
        }
    }

    /// Formats the vector as a `'0'`/`'1'` string, index 0 first.
    #[must_use]
    pub fn to_string01(&self) -> String {
        (0..self.len)
            .map(|i| if self.get(i) { '1' } else { '0' })
            .collect()
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec({})", self.to_string01())
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_string01())
    }
}

impl BitXor for &BitVec {
    type Output = BitVec;
    fn bitxor(self, rhs: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.xor_assign(rhs);
        out
    }
}

impl BitXorAssign<&BitVec> for BitVec {
    fn bitxor_assign(&mut self, rhs: &BitVec) {
        self.xor_assign(rhs);
    }
}

impl BitAnd for &BitVec {
    type Output = BitVec;
    fn bitand(self, rhs: &BitVec) -> BitVec {
        assert_eq!(self.len, rhs.len, "length mismatch");
        let mut out = self.clone();
        for (a, b) in out.limbs.iter_mut().zip(&rhs.limbs) {
            *a &= b;
        }
        out
    }
}

impl BitAndAssign<&BitVec> for BitVec {
    fn bitand_assign(&mut self, rhs: &BitVec) {
        assert_eq!(self.len, rhs.len, "length mismatch");
        for (a, b) in self.limbs.iter_mut().zip(&rhs.limbs) {
            *a &= b;
        }
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let bits: Vec<bool> = iter.into_iter().collect();
        BitVec::from_bits(&bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(10);
        assert_eq!(z.len(), 10);
        assert_eq!(z.weight(), 0);
        assert!(z.is_zero());
        let o = BitVec::ones(10);
        assert_eq!(o.weight(), 10);
        assert!(!o.is_zero());
    }

    #[test]
    fn set_get_flip_roundtrip() {
        let mut v = BitVec::zeros(70);
        v.set(0, true);
        v.set(63, true);
        v.set(64, true);
        v.set(69, true);
        assert!(v.get(0) && v.get(63) && v.get(64) && v.get(69));
        assert!(!v.get(1));
        assert_eq!(v.weight(), 4);
        v.flip(69);
        assert!(!v.get(69));
        assert_eq!(v.weight(), 3);
    }

    #[test]
    fn from_u64_roundtrip() {
        let v = BitVec::from_u64(8, 0b1011_0010);
        assert_eq!(v.to_u64(), 0b1011_0010);
        assert!(v.get(1));
        assert!(!v.get(0));
        assert_eq!(v.weight(), 4);
        // Bits beyond len are masked off.
        let w = BitVec::from_u64(4, 0xFF);
        assert_eq!(w.to_u64(), 0xF);
    }

    #[test]
    fn from_u128_roundtrip_spans_two_limbs() {
        let word = (0xDEAD_BEEF_u128 << 64) | 0x1234_5678_9ABC_DEF0;
        let v = BitVec::from_u128(100, word);
        assert_eq!(v.len(), 100);
        assert_eq!(v.to_u128(), word & ((1 << 100) - 1));
        // Bits beyond len are masked off.
        assert_eq!(BitVec::from_u128(72, u128::MAX).weight(), 72);
        assert_eq!(
            BitVec::from_u128(64, u128::MAX).to_u128(),
            u128::from(u64::MAX)
        );
        // Agreement with the u64 path on short vectors.
        let short = BitVec::from_u64(17, 0x1_ABCD);
        assert_eq!(short.to_u128(), 0x1_ABCD);
        assert_eq!(BitVec::from_u128(17, 0x1_ABCD), short);
    }

    #[test]
    fn from_str01_and_display() {
        let v = BitVec::from_str01("0110 0110");
        assert_eq!(v.len(), 8);
        assert_eq!(v.to_string01(), "01100110");
        assert_eq!(format!("{v}"), "01100110");
    }

    #[test]
    #[should_panic(expected = "invalid bit character")]
    fn from_str01_rejects_garbage() {
        let _ = BitVec::from_str01("01x0");
    }

    #[test]
    fn xor_and_dot() {
        let a = BitVec::from_str01("1100");
        let b = BitVec::from_str01("1010");
        assert_eq!((&a ^ &b).to_string01(), "0110");
        assert_eq!((&a & &b).to_string01(), "1000");
        assert!(a.dot(&b)); // overlap weight 1 -> parity 1
        let c = BitVec::from_str01("0011");
        assert!(!a.dot(&c)); // no overlap
    }

    #[test]
    fn hamming_distance_symmetric() {
        let a = BitVec::from_str01("10110100");
        let b = BitVec::from_str01("00111100");
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(b.hamming_distance(&a), 2);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    fn slice_and_concat() {
        let a = BitVec::from_str01("1011");
        let b = BitVec::from_str01("0110");
        let c = a.concat(&b);
        assert_eq!(c.to_string01(), "10110110");
        assert_eq!(c.slice(0..4).to_string01(), "1011");
        assert_eq!(c.slice(4..8).to_string01(), "0110");
        assert_eq!(c.slice(2..6).to_string01(), "1101");
    }

    #[test]
    fn support_lists_set_indices() {
        let v = BitVec::from_str01("01011");
        assert_eq!(v.support(), vec![1, 3, 4]);
    }

    #[test]
    fn from_iterator_collects() {
        let v: BitVec = [true, false, true].into_iter().collect();
        assert_eq!(v.to_string01(), "101");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = BitVec::zeros(3);
        let _ = v.get(3);
    }
}
