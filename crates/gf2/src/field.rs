//! Arithmetic in the binary extension fields GF(2^m).
//!
//! This module is the algebraic substrate for multi-error-correcting codes
//! (BCH in the `ecc` crate): log/antilog tables over a fixed primitive
//! polynomial, minimal polynomials of the powers of the primitive element
//! `α`, and the least-common-multiple construction of the binary BCH
//! generator polynomial.
//!
//! Field elements are represented as polynomial bitmasks over GF(2): the
//! `u16` value `0b101` is `x^2 + 1`. Multiplication and inversion go through
//! the log/antilog tables, so both are O(1) after construction.
//!
//! Polynomials **over** GF(2) (minimal polynomials, the BCH generator) are
//! represented as `u128` bitmasks — bit `i` is the coefficient of `x^i` —
//! which caps supported degrees at 127, far above what any `m ≤ 8` BCH
//! generator needs.

use crate::vec::BitVec;

/// Primitive polynomials over GF(2), indexed by degree `m` (2 ..= 8).
///
/// Bit `i` is the coefficient of `x^i`; e.g. `m = 5` maps to
/// `x^5 + x^2 + 1 = 0b100101`.
const PRIMITIVE_POLY: [u32; 9] = [
    0,             // m = 0 (unused)
    0,             // m = 1 (unused)
    0b111,         // m = 2: x^2 + x + 1
    0b1011,        // m = 3: x^3 + x + 1
    0b1_0011,      // m = 4: x^4 + x + 1
    0b10_0101,     // m = 5: x^5 + x^2 + 1
    0b100_0011,    // m = 6: x^6 + x + 1
    0b1000_1001,   // m = 7: x^7 + x^3 + 1
    0b1_0001_1101, // m = 8: x^8 + x^4 + x^3 + x^2 + 1
];

/// The finite field GF(2^m), built over a fixed primitive polynomial.
///
/// Supports `2 ≤ m ≤ 8`. Elements are `u16` polynomial bitmasks in
/// `0 .. 2^m`; `0` is the additive identity and `1` the multiplicative one.
///
/// # Example
///
/// ```
/// use gf2::field::Gf2m;
///
/// let f = Gf2m::new(4);
/// let a = f.alpha_pow(3);
/// assert_eq!(f.mul(a, f.inv(a)), 1);
/// assert_eq!(f.pow(f.alpha(), f.order()), 1); // α has order 2^m - 1
/// ```
#[derive(Debug, Clone)]
pub struct Gf2m {
    m: usize,
    /// antilog table: `exp[i] = α^i`, doubled so `mul` needs no modular fold.
    exp: Vec<u16>,
    /// log table: `log[a] = i` with `α^i = a`; `log[0]` is unused.
    log: Vec<u16>,
    /// quadratic-root table: `qroot[c]` is a solution `z` of `z² + z = c`,
    /// or `u16::MAX` when `c` has absolute trace 1 (no solution).
    qroot: Vec<u16>,
}

impl Gf2m {
    /// Constructs GF(2^m) over the canonical primitive polynomial.
    ///
    /// # Panics
    /// Panics unless `2 ≤ m ≤ 8`.
    #[must_use]
    pub fn new(m: usize) -> Self {
        assert!((2..=8).contains(&m), "Gf2m supports 2 <= m <= 8, got {m}");
        let poly = PRIMITIVE_POLY[m];
        let order = (1usize << m) - 1;
        let mut exp = vec![0u16; 2 * order];
        let mut log = vec![0u16; 1 << m];
        let mut acc: u32 = 1;
        for i in 0..order {
            exp[i] = acc as u16;
            exp[i + order] = acc as u16;
            log[acc as usize] = i as u16;
            acc <<= 1;
            if acc & (1 << m) != 0 {
                acc ^= poly;
            }
        }
        debug_assert_eq!(acc, 1, "polynomial for m={m} is not primitive");
        // z ↦ z² + z is 2-to-1 onto the trace-zero subfield half; record one
        // preimage per image so quadratics solve in O(1) (the batch BCH
        // kernels use this in place of a Chien search for degree-2 locators).
        let mut qroot = vec![u16::MAX; 1 << m];
        let mut field = Gf2m {
            m,
            exp,
            log,
            qroot: Vec::new(),
        };
        for z in 0..(1u16 << m) {
            let c = field.mul(z, z) ^ z;
            if qroot[c as usize] == u16::MAX {
                qroot[c as usize] = z;
            }
        }
        field.qroot = qroot;
        field
    }

    /// The extension degree `m`.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.m
    }

    /// The multiplicative order `2^m - 1` (also the BCH blocklength `n`).
    #[must_use]
    pub fn order(&self) -> usize {
        (1 << self.m) - 1
    }

    /// The number of field elements, `2^m`.
    #[must_use]
    pub fn size(&self) -> usize {
        1 << self.m
    }

    /// The primitive element `α` (the polynomial `x`).
    #[must_use]
    pub fn alpha(&self) -> u16 {
        2
    }

    /// Addition (and subtraction): carryless XOR.
    #[inline]
    #[must_use]
    pub fn add(&self, a: u16, b: u16) -> u16 {
        a ^ b
    }

    /// `α^e` for any exponent (reduced mod `2^m - 1`).
    #[inline]
    #[must_use]
    pub fn alpha_pow(&self, e: usize) -> u16 {
        self.exp[e % self.order()]
    }

    /// The discrete logarithm of a non-zero element: `log(α^i) = i`.
    ///
    /// # Panics
    /// Panics on `a = 0`, which has no logarithm.
    #[inline]
    #[must_use]
    pub fn log(&self, a: u16) -> usize {
        assert!(a != 0, "log of zero");
        self.log[a as usize] as usize
    }

    /// Multiplication through the log/antilog tables.
    #[inline]
    #[must_use]
    pub fn mul(&self, a: u16, b: u16) -> u16 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
        }
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    /// Panics on `a = 0`.
    #[inline]
    #[must_use]
    pub fn inv(&self, a: u16) -> u16 {
        assert!(a != 0, "inverse of zero");
        let order = self.order();
        self.exp[(order - self.log[a as usize] as usize) % order]
    }

    /// Division `a / b`.
    ///
    /// # Panics
    /// Panics on `b = 0`.
    #[inline]
    #[must_use]
    pub fn div(&self, a: u16, b: u16) -> u16 {
        self.mul(a, self.inv(b))
    }

    /// Exponentiation `a^e` (with `0^0 = 1`).
    #[must_use]
    pub fn pow(&self, a: u16, e: usize) -> u16 {
        if a == 0 {
            return u16::from(e == 0);
        }
        let order = self.order();
        self.exp[(self.log[a as usize] as usize * (e % order)) % order]
    }

    /// Squaring (the Frobenius automorphism `a ↦ a²`).
    ///
    /// Because squaring is GF(2)-linear and field-automorphic, the even power
    /// syndromes of a BCH code satisfy `S_{2i} = S_i²` — the identity the
    /// bit-sliced batch syndrome kernel relies on to accumulate only the odd
    /// powers.
    #[inline]
    #[must_use]
    pub fn square(&self, a: u16) -> u16 {
        self.mul(a, a)
    }

    /// Solves `z² + z = c`, returning one root (the other is `z ^ 1`), or
    /// `None` when `c` has absolute trace 1 and the quadratic has no root in
    /// the field. O(1) via a table built at construction.
    ///
    /// # Example
    ///
    /// ```
    /// use gf2::field::Gf2m;
    ///
    /// let f = Gf2m::new(5);
    /// let c = f.alpha_pow(7);
    /// if let Some(z) = f.solve_quadratic(c) {
    ///     assert_eq!(f.add(f.square(z), z), c);
    ///     assert_eq!(f.add(f.square(z ^ 1), z ^ 1), c);
    /// }
    /// ```
    #[inline]
    #[must_use]
    pub fn solve_quadratic(&self, c: u16) -> Option<u16> {
        let z = self.qroot[c as usize];
        (z != u16::MAX).then_some(z)
    }

    /// The cyclotomic coset of `i` modulo `2^m - 1`: `{i, 2i, 4i, ...}`.
    ///
    /// The coset lists the exponents of the conjugates `α^i, α^{2i}, ...`
    /// that share a minimal polynomial over GF(2).
    #[must_use]
    pub fn cyclotomic_coset(&self, i: usize) -> Vec<usize> {
        let order = self.order();
        let start = i % order;
        let mut coset = vec![start];
        let mut next = (start * 2) % order;
        while next != start {
            coset.push(next);
            next = (next * 2) % order;
        }
        coset
    }

    /// The minimal polynomial of `α^i` over GF(2), as a `u128` bitmask
    /// (bit `d` = coefficient of `x^d`).
    ///
    /// Computed as `Π (x - α^j)` over the cyclotomic coset of `i`; the
    /// product of conjugates always collapses to GF(2) coefficients.
    #[must_use]
    pub fn minimal_polynomial(&self, i: usize) -> u128 {
        // Coefficients live in GF(2^m) during the product; each is a u16.
        let coset = self.cyclotomic_coset(i);
        let mut coeffs: Vec<u16> = vec![1]; // the constant polynomial 1
        for &j in &coset {
            let root = self.alpha_pow(j);
            // poly *= (x + root)
            let mut next = vec![0u16; coeffs.len() + 1];
            for (d, &c) in coeffs.iter().enumerate() {
                next[d + 1] ^= c; // c * x
                next[d] ^= self.mul(c, root); // c * root
            }
            coeffs = next;
        }
        let mut mask: u128 = 0;
        for (d, &c) in coeffs.iter().enumerate() {
            debug_assert!(c <= 1, "minimal polynomial has non-binary coefficient");
            if c == 1 {
                mask |= 1u128 << d;
            }
        }
        mask
    }

    /// The generator polynomial of the primitive binary BCH code with
    /// designed distance `2t + 1`: `lcm` of the minimal polynomials of
    /// `α, α^2, ..., α^{2t}`.
    ///
    /// Returns the polynomial as a `u128` bitmask; its degree is the
    /// redundancy `n - k` of the code.
    ///
    /// # Panics
    /// Panics if `t = 0` or if the designed distance exceeds the
    /// blocklength (`2t ≥ 2^m - 1`).
    #[must_use]
    pub fn bch_generator(&self, t: usize) -> u128 {
        assert!(t >= 1, "BCH needs t >= 1");
        assert!(
            2 * t < self.order(),
            "designed distance exceeds blocklength"
        );
        let mut g: u128 = 1;
        let mut covered = vec![false; self.order()];
        for i in 1..=2 * t {
            if covered[i] {
                continue;
            }
            for j in self.cyclotomic_coset(i) {
                covered[j] = true;
            }
            g = poly_mul(g, self.minimal_polynomial(i));
        }
        g
    }
}

/// Degree of a non-zero GF(2) polynomial bitmask.
///
/// # Panics
/// Panics on the zero polynomial.
#[must_use]
pub fn poly_degree(p: u128) -> usize {
    assert!(p != 0, "degree of the zero polynomial");
    127 - p.leading_zeros() as usize
}

/// Carryless product of two GF(2) polynomial bitmasks.
///
/// # Panics
/// Panics if the product degree would exceed 127.
#[must_use]
pub fn poly_mul(a: u128, b: u128) -> u128 {
    if a == 0 || b == 0 {
        return 0;
    }
    assert!(
        poly_degree(a) + poly_degree(b) < 128,
        "poly_mul overflow beyond degree 127"
    );
    let mut acc: u128 = 0;
    let mut a = a;
    let mut shift = 0;
    while a != 0 {
        if a & 1 != 0 {
            acc ^= b << shift;
        }
        a >>= 1;
        shift += 1;
    }
    acc
}

/// Remainder of `a` modulo `b` over GF(2).
///
/// # Panics
/// Panics if `b` is zero.
#[must_use]
pub fn poly_rem(a: u128, b: u128) -> u128 {
    assert!(b != 0, "division by the zero polynomial");
    let db = poly_degree(b);
    let mut r = a;
    while r != 0 {
        let dr = poly_degree(r);
        if dr < db {
            break;
        }
        r ^= b << (dr - db);
    }
    r
}

/// Converts a GF(2) polynomial bitmask into a [`BitVec`] of length `len`
/// where vector position `i` holds the coefficient of `x^{len - 1 - i}`
/// (big-endian, matching the codeword layout used by `ecc::Bch`).
///
/// # Panics
/// Panics if the polynomial has degree ≥ `len`.
#[must_use]
pub fn poly_to_bitvec_be(p: u128, len: usize) -> BitVec {
    if p != 0 {
        assert!(
            poly_degree(p) < len,
            "polynomial does not fit in {len} bits"
        );
    }
    let mut v = BitVec::zeros(len);
    for d in 0..len {
        if p & (1u128 << d) != 0 {
            v.set(len - 1 - d, true);
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_consistent_for_all_supported_m() {
        for m in 2..=8 {
            let f = Gf2m::new(m);
            // α^i runs over every non-zero element exactly once.
            let mut seen = vec![false; f.size()];
            for i in 0..f.order() {
                let a = f.alpha_pow(i);
                assert!(a != 0 && (a as usize) < f.size());
                assert!(!seen[a as usize], "α^{i} repeats in GF(2^{m})");
                seen[a as usize] = true;
                assert_eq!(f.log(a), i);
            }
        }
    }

    #[test]
    fn field_axioms_hold_exhaustively_in_gf16() {
        let f = Gf2m::new(4);
        for a in 0..16u16 {
            for b in 0..16u16 {
                assert_eq!(f.mul(a, b), f.mul(b, a));
                for c in 0..16u16 {
                    assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
                    assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
                }
            }
            if a != 0 {
                assert_eq!(f.mul(a, f.inv(a)), 1);
                assert_eq!(f.div(a, a), 1);
            }
        }
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let f = Gf2m::new(5);
        for a in 1..32u16 {
            let mut acc = 1u16;
            for e in 0..40 {
                assert_eq!(f.pow(a, e), acc, "a={a} e={e}");
                acc = f.mul(acc, a);
            }
        }
        assert_eq!(f.pow(0, 0), 1);
        assert_eq!(f.pow(0, 3), 0);
    }

    #[test]
    fn gf32_minimal_polynomials_match_the_textbook() {
        // Lin & Costello, Appendix B: GF(32) over x^5 + x^2 + 1.
        let f = Gf2m::new(5);
        assert_eq!(f.minimal_polynomial(1), 0b100101);
        assert_eq!(f.minimal_polynomial(3), 0b111101);
        assert_eq!(f.minimal_polynomial(5), 0b110111);
    }

    #[test]
    fn minimal_polynomial_annihilates_its_conjugates() {
        for m in 2..=6 {
            let f = Gf2m::new(m);
            for i in 1..f.order() {
                let p = f.minimal_polynomial(i);
                for j in f.cyclotomic_coset(i) {
                    // Evaluate p at α^j over GF(2^m).
                    let x = f.alpha_pow(j);
                    let mut acc = 0u16;
                    for d in 0..=poly_degree(p) {
                        if p & (1u128 << d) != 0 {
                            acc ^= f.pow(x, d);
                        }
                    }
                    assert_eq!(acc, 0, "m={m} i={i} j={j}");
                }
            }
        }
    }

    #[test]
    fn bch_generator_for_gf32_t2_and_t3() {
        let f = Gf2m::new(5);
        // t = 2: g = m1 * m3, degree 10 → BCH(31,21).
        let g2 = f.bch_generator(2);
        assert_eq!(poly_degree(g2), 10);
        assert_eq!(g2, poly_mul(0b100101, 0b111101));
        // t = 3: g = m1 * m3 * m5, degree 15 → BCH(31,16), d_min = 7.
        let g3 = f.bch_generator(3);
        assert_eq!(poly_degree(g3), 15);
        assert_eq!(g3, poly_mul(poly_mul(0b100101, 0b111101), 0b110111));
    }

    #[test]
    fn bch_generator_roots_cover_the_designed_powers() {
        let f = Gf2m::new(5);
        let g = f.bch_generator(3);
        for i in 1..=6 {
            let x = f.alpha_pow(i);
            let mut acc = 0u16;
            for d in 0..=poly_degree(g) {
                if g & (1u128 << d) != 0 {
                    acc ^= f.pow(x, d);
                }
            }
            assert_eq!(acc, 0, "α^{i} must be a root of g");
        }
    }

    #[test]
    fn hamming_is_the_t1_special_case() {
        // t = 1 BCH over GF(8) is Hamming(7,4): g = x^3 + x + 1.
        let f = Gf2m::new(3);
        assert_eq!(f.bch_generator(1), 0b1011);
    }

    #[test]
    fn poly_helpers_roundtrip() {
        let a = 0b1101u128;
        let b = 0b111u128;
        let prod = poly_mul(a, b);
        assert_eq!(poly_rem(prod, a), 0);
        assert_eq!(poly_rem(prod, b), 0);
        assert_eq!(poly_rem(prod ^ 0b10, b), poly_rem(0b10, b));
        let v = poly_to_bitvec_be(0b1011, 6);
        assert_eq!(v.to_string01(), "001011");
    }

    #[test]
    fn square_is_frobenius() {
        for m in 2..=8 {
            let f = Gf2m::new(m);
            for a in 0..(1u16 << m) {
                for b in 0..(1u16 << m) {
                    assert_eq!(f.square(a ^ b), f.square(a) ^ f.square(b));
                }
                assert_eq!(f.square(a), f.pow(a, 2));
            }
        }
    }

    #[test]
    fn solve_quadratic_finds_exactly_the_trace_zero_half() {
        for m in 2..=8 {
            let f = Gf2m::new(m);
            let mut solvable = 0usize;
            for c in 0..(1u16 << m) {
                match f.solve_quadratic(c) {
                    Some(z) => {
                        solvable += 1;
                        assert_eq!(f.square(z) ^ z, c, "m={m} c={c}");
                        assert_eq!(f.square(z ^ 1) ^ (z ^ 1), c, "m={m} c={c} twin");
                        // Exactly two roots: any other element misses.
                        for w in 0..(1u16 << m) {
                            if w != z && w != (z ^ 1) {
                                assert_ne!(f.square(w) ^ w, c);
                            }
                        }
                    }
                    None => {
                        for w in 0..(1u16 << m) {
                            assert_ne!(f.square(w) ^ w, c, "m={m} c={c} claimed no root");
                        }
                    }
                }
            }
            assert_eq!(solvable, 1 << (m - 1), "half the field is trace-zero");
        }
    }

    #[test]
    #[should_panic(expected = "supports 2 <= m <= 8")]
    fn rejects_unsupported_degree() {
        let _ = Gf2m::new(9);
    }
}
