//! Per-cell fault descriptions used by the gate-level simulator.
//!
//! A fault map assigns each netlist node a per-activation malfunction
//! probability and a failure mode. Fault maps are produced by the PPV model
//! ([`crate::ppv::PpvModel`]) from sampled parameter deviations, but can also
//! be constructed directly for targeted fault-injection tests.

use serde::{Deserialize, Serialize};
use sfq_netlist::{Netlist, NodeId};

/// How a malfunctioning cell misbehaves during an affected clock cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureMode {
    /// The cell fails to emit its output pulse (the dominant SFQ failure:
    /// a junction that should switch does not).
    DropPulse,
    /// The cell emits a pulse it should not have (premature or thermally
    /// induced switching).
    SpuriousPulse,
    /// The output is inverted: a pulse that should appear is dropped and a
    /// missing pulse appears — models a storage loop stuck in the wrong state.
    Invert,
}

/// Fault state of one cell for one fabricated chip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellFault {
    /// Probability that the cell malfunctions during any given clock cycle in
    /// which it is active.
    pub activation_failure_prob: f64,
    /// How the malfunction manifests.
    pub mode: FailureMode,
}

impl CellFault {
    /// A healthy cell: never malfunctions.
    #[must_use]
    pub fn healthy() -> Self {
        CellFault {
            activation_failure_prob: 0.0,
            mode: FailureMode::DropPulse,
        }
    }

    /// A hard-failed cell: malfunctions on every cycle.
    #[must_use]
    pub fn hard(mode: FailureMode) -> Self {
        CellFault {
            activation_failure_prob: 1.0,
            mode,
        }
    }

    /// Returns `true` if this cell can ever malfunction.
    #[must_use]
    pub fn is_faulty(&self) -> bool {
        self.activation_failure_prob > 0.0
    }
}

impl Default for CellFault {
    fn default() -> Self {
        Self::healthy()
    }
}

/// Fault assignment for every node of a netlist (one "fabricated chip").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultMap {
    faults: Vec<CellFault>,
}

impl FaultMap {
    /// An all-healthy fault map for a netlist.
    #[must_use]
    pub fn healthy(netlist: &Netlist) -> Self {
        FaultMap {
            faults: vec![CellFault::healthy(); netlist.nodes().len()],
        }
    }

    /// Sets the fault of one node.
    ///
    /// # Panics
    /// Panics if the node id is out of range for the netlist this map was
    /// created from.
    pub fn set(&mut self, node: NodeId, fault: CellFault) {
        self.faults[node.0] = fault;
    }

    /// Returns the fault of one node.
    #[must_use]
    pub fn get(&self, node: NodeId) -> CellFault {
        self.faults[node.0]
    }

    /// Number of nodes with a nonzero malfunction probability.
    #[must_use]
    pub fn faulty_count(&self) -> usize {
        self.faults.iter().filter(|f| f.is_faulty()).count()
    }

    /// Iterates over `(node, fault)` pairs with nonzero malfunction
    /// probability.
    pub fn iter_faulty(&self) -> impl Iterator<Item = (NodeId, CellFault)> + '_ {
        self.faults
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_faulty())
            .map(|(i, f)| (NodeId(i), *f))
    }

    /// Returns `true` if every cell is healthy.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        self.faulty_count() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_map_has_no_faults() {
        let mut nl = Netlist::new("t");
        nl.add_input("a");
        nl.add_output("o");
        let map = FaultMap::healthy(&nl);
        assert!(map.is_healthy());
        assert_eq!(map.faulty_count(), 0);
        assert_eq!(map.iter_faulty().count(), 0);
    }

    #[test]
    fn set_and_get_fault() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        nl.add_output("o");
        let mut map = FaultMap::healthy(&nl);
        map.set(a, CellFault::hard(FailureMode::SpuriousPulse));
        assert!(!map.is_healthy());
        assert_eq!(map.faulty_count(), 1);
        assert_eq!(map.get(a).mode, FailureMode::SpuriousPulse);
        assert!((map.get(a).activation_failure_prob - 1.0).abs() < 1e-12);
    }

    #[test]
    fn default_fault_is_healthy() {
        let f = CellFault::default();
        assert!(!f.is_faulty());
    }
}
