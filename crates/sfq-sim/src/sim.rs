//! The cycle-driven pulse-level simulator.
//!
//! # Simulation model
//!
//! Time is divided into clock cycles. During cycle `t`:
//!
//! * primary-input pulses scheduled for cycle `t` and output pulses emitted by
//!   clocked cells at the end of cycle `t − 1` propagate through the
//!   combinational fabric (splitters, JTLs, mergers, SFQ-to-DC converters)
//!   and are accumulated in the internal state of the clocked gates they
//!   reach;
//! * the clock source emits one pulse per cycle, which travels through the
//!   clock-distribution splitters to the clock port of every clocked gate;
//! * at the end of the cycle each clocked gate that received a clock pulse
//!   evaluates its logic function on the accumulated state, resets it, and —
//!   if the result is `1` — emits an output pulse that will arrive at its
//!   sink during cycle `t + 1`.
//!
//! This reproduces the behaviour the paper describes for its encoders: a
//! logic-depth-2 circuit driven with a message in cycle 0 produces its
//! codeword pulses in cycle 2 ("it takes two clock cycles to produce these
//! codeword bits", Fig. 3).
//!
//! SFQ-to-DC output drivers are modelled as toggling storage elements: every
//! arriving pulse inverts the DC level, which is what the room-temperature
//! receiver samples.
//!
//! # Fault injection
//!
//! [`GateLevelSim::run_with_faults`] consults a [`FaultMap`]: every time a
//! faulty cell is activated it malfunctions with its per-activation
//! probability, either dropping its output pulse, emitting a spurious one, or
//! inverting its output.

use crate::fault::{FailureMode, FaultMap};
use gf2::BitVec;
use rand::Rng;
use serde::{Deserialize, Serialize};
use sfq_cells::CellKind;
use sfq_netlist::{Netlist, NodeId, NodeKind};
use std::collections::VecDeque;

/// Input stimulus: which primary inputs pulse in which cycles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stimulus {
    num_inputs: usize,
    /// `pulses[i]` lists the cycles in which input `i` emits a pulse.
    pulses: Vec<Vec<usize>>,
}

impl Stimulus {
    /// Creates an empty stimulus for a netlist.
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        Stimulus {
            num_inputs: netlist.inputs().len(),
            pulses: vec![Vec::new(); netlist.inputs().len()],
        }
    }

    /// Schedules a pulse on primary input `input_index` in `cycle`.
    ///
    /// # Panics
    /// Panics if the input index is out of range.
    pub fn pulse_input(&mut self, input_index: usize, cycle: usize) {
        assert!(input_index < self.num_inputs, "input index out of range");
        self.pulses[input_index].push(cycle);
    }

    /// Applies a binary word in `cycle`: input `i` pulses iff `word[i]` is 1.
    ///
    /// # Panics
    /// Panics if the word length differs from the number of inputs.
    pub fn apply_word(&mut self, word: &BitVec, cycle: usize) {
        assert_eq!(
            word.len(),
            self.num_inputs,
            "word length must match input count"
        );
        for i in 0..word.len() {
            if word.get(i) {
                self.pulse_input(i, cycle);
            }
        }
    }

    /// Returns `true` if input `i` pulses in `cycle`.
    #[must_use]
    pub fn pulses_at(&self, input_index: usize, cycle: usize) -> bool {
        self.pulses[input_index].contains(&cycle)
    }
}

/// Recorded activity of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    cycles: usize,
    output_names: Vec<String>,
    /// `arrivals[o][t]` — a pulse arrived at primary output `o` during cycle `t`.
    arrivals: Vec<Vec<bool>>,
    /// `dc[o][t]` — DC level presented to output `o` at the end of cycle `t`
    /// (toggles on every arriving pulse).
    dc: Vec<Vec<bool>>,
    /// `emissions[n][t]` — node `n` emitted (or forwarded) a pulse in cycle `t`.
    emissions: Vec<Vec<bool>>,
}

impl Trace {
    /// Number of simulated cycles.
    #[must_use]
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Pulse arrivals at primary output `o`, one flag per cycle.
    #[must_use]
    pub fn output_pulses(&self, output_index: usize) -> &[bool] {
        &self.arrivals[output_index]
    }

    /// Number of pulses that arrived at primary output `o` over the whole run.
    #[must_use]
    pub fn pulse_count(&self, output_index: usize) -> usize {
        self.arrivals[output_index].iter().filter(|&&b| b).count()
    }

    /// DC level of output `o` at the end of cycle `t`.
    #[must_use]
    pub fn dc_level(&self, output_index: usize, cycle: usize) -> bool {
        self.dc[output_index][cycle]
    }

    /// The word formed by the DC levels of all outputs at the end of `cycle`.
    ///
    /// For an encoder whose outputs drive SFQ-to-DC converters this is what
    /// the room-temperature receiver samples once the codeword has settled
    /// (i.e. at `cycle = logic depth`).
    #[must_use]
    pub fn dc_word_at(&self, cycle: usize) -> BitVec {
        (0..self.dc.len()).map(|o| self.dc[o][cycle]).collect()
    }

    /// The word formed by the parity of all pulses seen at each output over
    /// the entire run — identical to [`Trace::dc_word_at`] at the last cycle.
    #[must_use]
    pub fn parity_word(&self) -> BitVec {
        (0..self.arrivals.len())
            .map(|o| self.pulse_count(o) % 2 == 1)
            .collect()
    }

    /// Whether node `n` emitted a pulse during cycle `t`.
    #[must_use]
    pub fn node_emitted(&self, node: NodeId, cycle: usize) -> bool {
        self.emissions[node.0][cycle]
    }

    /// Names of the primary outputs, in output order.
    #[must_use]
    pub fn output_names(&self) -> &[String] {
        &self.output_names
    }
}

/// Internal compact description of a node used by the inner loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimNode {
    Input,
    Output { output_index: usize },
    ClockSource,
    Combinational(CellKind),
    Clocked { kind: CellKind, clock_port: usize },
}

/// A gate-level simulator bound to one netlist.
///
/// The simulator itself is immutable and reusable; each [`GateLevelSim::run`]
/// call allocates its own per-run state, so one simulator can be shared by
/// many Monte-Carlo workers.
#[derive(Debug, Clone)]
pub struct GateLevelSim {
    nodes: Vec<SimNode>,
    /// Per node, per output port: list of (sink node, sink port).
    sinks: Vec<Vec<Vec<(usize, usize)>>>,
    input_nodes: Vec<usize>,
    output_nodes: Vec<usize>,
    output_names: Vec<String>,
    num_nodes: usize,
}

impl GateLevelSim {
    /// Prepares a simulator for a netlist.
    #[must_use]
    pub fn new(netlist: &Netlist) -> Self {
        let num_nodes = netlist.nodes().len();
        let mut nodes = Vec::with_capacity(num_nodes);
        let mut output_nodes = Vec::new();
        let mut output_names = Vec::new();
        for node in netlist.nodes() {
            let sim_node = match &node.kind {
                NodeKind::Input => SimNode::Input,
                NodeKind::Output => {
                    let idx = output_nodes.len();
                    output_nodes.push(node.id.0);
                    output_names.push(node.name.clone());
                    SimNode::Output { output_index: idx }
                }
                NodeKind::ClockSource => SimNode::ClockSource,
                NodeKind::Cell(kind) => {
                    if kind.is_clocked() {
                        SimNode::Clocked {
                            kind: *kind,
                            clock_port: kind.data_inputs(),
                        }
                    } else {
                        SimNode::Combinational(*kind)
                    }
                }
            };
            nodes.push(sim_node);
        }
        let mut sinks: Vec<Vec<Vec<(usize, usize)>>> = netlist
            .nodes()
            .iter()
            .map(|n| vec![Vec::new(); n.kind.output_ports()])
            .collect();
        for conn in netlist.connections() {
            sinks[conn.from.node.0][conn.from.port].push((conn.to.0, conn.to_port));
        }
        let input_nodes = netlist.inputs().iter().map(|id| id.0).collect();
        GateLevelSim {
            nodes,
            sinks,
            input_nodes,
            output_nodes,
            output_names,
            num_nodes,
        }
    }

    /// Runs the netlist fault-free for `cycles` clock cycles.
    #[must_use]
    pub fn run(&self, stimulus: &Stimulus, cycles: usize) -> Trace {
        let healthy = FaultMap::healthy_with_len(self.num_nodes);
        // No cell is faulty, so the roll source is never consulted.
        self.run_inner(stimulus, cycles, &healthy, &mut |_p| false)
    }

    /// Runs the netlist for `cycles` clock cycles with fault injection.
    #[must_use]
    pub fn run_with_faults<R: Rng + ?Sized>(
        &self,
        stimulus: &Stimulus,
        cycles: usize,
        faults: &FaultMap,
        rng: &mut R,
    ) -> Trace {
        let mut roll = |probability: f64| {
            if probability <= 0.0 {
                false
            } else if probability >= 1.0 {
                true
            } else {
                rng.random::<f64>() < probability
            }
        };
        self.run_inner(stimulus, cycles, faults, &mut roll)
    }

    fn run_inner(
        &self,
        stimulus: &Stimulus,
        cycles: usize,
        faults: &FaultMap,
        roll: &mut dyn FnMut(f64) -> bool,
    ) -> Trace {
        let n = self.num_nodes;
        let num_outputs = self.output_nodes.len();
        let mut arrivals = vec![vec![false; cycles]; num_outputs];
        let mut dc_state = vec![false; num_outputs];
        let mut dc = vec![vec![false; cycles]; num_outputs];
        let mut emissions = vec![vec![false; cycles]; n];

        // Clocked-cell state.
        let mut data_state: Vec<[bool; 2]> = vec![[false; 2]; n];
        let mut clocked_this_cycle = vec![false; n];
        // Output pulses scheduled by clocked cells for the *next* cycle.
        let mut pending: Vec<bool> = vec![false; n];

        for cycle in 0..cycles {
            // Event queue of pulses arriving at (node, input port).
            let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
            // Safety bound against malformed (cyclic) combinational netlists.
            let mut budget = 64 * (n + 1) * (cycle + 1);

            // 1. Emissions scheduled by clocked cells at the previous edge.
            let emit = |node: usize,
                        queue: &mut VecDeque<(usize, usize)>,
                        emissions: &mut Vec<Vec<bool>>| {
                emissions[node][cycle] = true;
                for port_sinks in &self.sinks[node] {
                    for &(sink, sink_port) in port_sinks {
                        queue.push_back((sink, sink_port));
                    }
                }
            };
            for (node, slot) in pending.iter_mut().enumerate() {
                if *slot {
                    *slot = false;
                    emit(node, &mut queue, &mut emissions);
                }
            }
            // 2. Primary-input pulses for this cycle.
            for (i, &node) in self.input_nodes.iter().enumerate() {
                if stimulus.pulses_at(i, cycle) {
                    emit(node, &mut queue, &mut emissions);
                }
            }
            // 3. The clock source pulses every cycle.
            for node in 0..n {
                if self.nodes[node] == SimNode::ClockSource {
                    emit(node, &mut queue, &mut emissions);
                }
            }
            // 4. Spurious activity of faulty combinational cells.
            for (node_id, fault) in faults.iter_faulty() {
                let node = node_id.0;
                if let SimNode::Combinational(_) = self.nodes[node] {
                    if matches!(fault.mode, FailureMode::SpuriousPulse)
                        && roll(fault.activation_failure_prob)
                    {
                        emit(node, &mut queue, &mut emissions);
                    }
                }
            }

            // 5. Propagate through the combinational fabric.
            while let Some((node, port)) = queue.pop_front() {
                budget = budget.saturating_sub(1);
                assert!(
                    budget > 0,
                    "combinational propagation did not converge (cycle in netlist?)"
                );
                match self.nodes[node] {
                    SimNode::Output { output_index } => {
                        arrivals[output_index][cycle] = true;
                        dc_state[output_index] = !dc_state[output_index];
                    }
                    SimNode::Input | SimNode::ClockSource => {
                        // Inputs and the clock have no input ports; nothing to do.
                    }
                    SimNode::Clocked { clock_port, .. } => {
                        if port == clock_port {
                            clocked_this_cycle[node] = true;
                        } else {
                            // A second pulse on the same data port within one
                            // cycle toggles the stored flux back out.
                            data_state[node][port] ^= true;
                        }
                    }
                    SimNode::Combinational(kind) => {
                        let fault = faults.get(NodeId(node));
                        let dropped = fault.is_faulty()
                            && matches!(fault.mode, FailureMode::DropPulse | FailureMode::Invert)
                            && roll(fault.activation_failure_prob);
                        if dropped {
                            continue;
                        }
                        match kind {
                            CellKind::SfqToDc => {
                                // The driver toggles its DC level and presents
                                // it downstream; model the downstream arrival
                                // as a pulse so that the Output node's toggle
                                // tracking stays in sync.
                                emissions[node][cycle] = true;
                                for &(sink, sink_port) in &self.sinks[node][0] {
                                    queue.push_back((sink, sink_port));
                                }
                            }
                            _ => {
                                emissions[node][cycle] = true;
                                for port_sinks in &self.sinks[node] {
                                    for &(sink, sink_port) in port_sinks {
                                        queue.push_back((sink, sink_port));
                                    }
                                }
                            }
                        }
                    }
                }
            }

            // 6. Clock edge: evaluate clocked cells.
            for node in 0..n {
                if !clocked_this_cycle[node] {
                    continue;
                }
                clocked_this_cycle[node] = false;
                let SimNode::Clocked { kind, .. } = self.nodes[node] else {
                    continue;
                };
                let [a, b] = data_state[node];
                data_state[node] = [false, false];
                let mut out = match kind {
                    CellKind::Xor => a ^ b,
                    CellKind::And => a & b,
                    CellKind::Or => a | b,
                    CellKind::Not => !a,
                    CellKind::Dff => a,
                    _ => a,
                };
                let fault = faults.get(NodeId(node));
                if fault.is_faulty() && roll(fault.activation_failure_prob) {
                    out = match fault.mode {
                        FailureMode::DropPulse => false,
                        FailureMode::SpuriousPulse => true,
                        FailureMode::Invert => !out,
                    };
                }
                if out {
                    pending[node] = true;
                }
            }

            // 7. Snapshot DC levels at the end of the cycle.
            for o in 0..num_outputs {
                dc[o][cycle] = dc_state[o];
            }
        }

        Trace {
            cycles,
            output_names: self.output_names.clone(),
            arrivals,
            dc,
            emissions,
        }
    }
}

impl FaultMap {
    /// Internal constructor for a healthy map of a given node count (used by
    /// the fault-free simulation path).
    #[must_use]
    pub(crate) fn healthy_with_len(len: usize) -> Self {
        let mut nl = Netlist::new("empty");
        for _ in 0..len {
            nl.add_input("x");
        }
        FaultMap::healthy(&nl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::CellFault;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfq_netlist::{synth, PortRef};

    /// input -> DFF -> DFF -> output with clock tree.
    fn pipeline(depth: usize) -> Netlist {
        let mut nl = Netlist::new("pipe");
        let a = nl.add_input("a");
        nl.add_clock("clk");
        let end = synth::dff_chain(&mut nl, PortRef::of(a), depth, "a");
        let out = nl.add_output("o");
        nl.connect(end, out, 0);
        synth::build_clock_tree(&mut nl, "clk");
        nl
    }

    /// 2-input XOR with clock, splitter-free.
    fn xor_netlist() -> Netlist {
        let mut nl = Netlist::new("xor");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        nl.add_clock("clk");
        let x = nl.add_cell(CellKind::Xor, "x0");
        nl.connect(PortRef::of(a), x, 0);
        nl.connect(PortRef::of(b), x, 1);
        nl.add_clock_sink(x);
        let drv = nl.add_cell(CellKind::SfqToDc, "drv");
        nl.connect(PortRef::of(x), drv, 0);
        let out = nl.add_output("c");
        nl.connect(PortRef::of(drv), out, 0);
        synth::build_clock_tree(&mut nl, "clk");
        nl
    }

    #[test]
    fn pulse_takes_one_cycle_per_dff_stage() {
        for depth in 1..=4 {
            let nl = pipeline(depth);
            let sim = GateLevelSim::new(&nl);
            let mut stim = Stimulus::new(&nl);
            stim.pulse_input(0, 0);
            let trace = sim.run(&stim, depth + 2);
            for (cycle, &pulsed) in trace.output_pulses(0).iter().enumerate() {
                assert_eq!(pulsed, cycle == depth, "depth {depth} cycle {cycle}");
            }
        }
    }

    #[test]
    fn xor_truth_table() {
        let nl = xor_netlist();
        let sim = GateLevelSim::new(&nl);
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut stim = Stimulus::new(&nl);
            if a {
                stim.pulse_input(0, 0);
            }
            if b {
                stim.pulse_input(1, 0);
            }
            let trace = sim.run(&stim, 3);
            let expected = a ^ b;
            assert_eq!(trace.pulse_count(0) % 2 == 1, expected, "a={a} b={b}");
            assert_eq!(trace.dc_word_at(2).get(0), expected, "a={a} b={b}");
        }
    }

    #[test]
    fn no_stimulus_means_no_output_activity() {
        let nl = xor_netlist();
        let sim = GateLevelSim::new(&nl);
        let stim = Stimulus::new(&nl);
        let trace = sim.run(&stim, 4);
        assert_eq!(trace.pulse_count(0), 0);
        assert!(!trace.dc_word_at(3).get(0));
    }

    #[test]
    fn hard_drop_fault_on_dff_blocks_pulse() {
        let nl = pipeline(2);
        let sim = GateLevelSim::new(&nl);
        // Find the first DFF node.
        let dff = nl
            .nodes()
            .iter()
            .find(|n| n.kind == NodeKind::Cell(CellKind::Dff))
            .unwrap()
            .id;
        let mut faults = FaultMap::healthy(&nl);
        faults.set(dff, CellFault::hard(FailureMode::DropPulse));
        let mut stim = Stimulus::new(&nl);
        stim.pulse_input(0, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let trace = sim.run_with_faults(&stim, 4, &faults, &mut rng);
        assert_eq!(trace.pulse_count(0), 0, "pulse should have been dropped");
    }

    #[test]
    fn hard_spurious_fault_on_dff_creates_pulses() {
        let nl = pipeline(1);
        let sim = GateLevelSim::new(&nl);
        let dff = nl
            .nodes()
            .iter()
            .find(|n| n.kind == NodeKind::Cell(CellKind::Dff))
            .unwrap()
            .id;
        let mut faults = FaultMap::healthy(&nl);
        faults.set(dff, CellFault::hard(FailureMode::SpuriousPulse));
        let stim = Stimulus::new(&nl); // no input pulses at all
        let mut rng = StdRng::seed_from_u64(2);
        let trace = sim.run_with_faults(&stim, 3, &faults, &mut rng);
        assert!(
            trace.pulse_count(0) > 0,
            "spurious pulses should reach the output"
        );
    }

    #[test]
    fn stimulus_word_application() {
        let nl = xor_netlist();
        let mut stim = Stimulus::new(&nl);
        stim.apply_word(&BitVec::from_str01("10"), 0);
        assert!(stim.pulses_at(0, 0));
        assert!(!stim.pulses_at(1, 0));
    }

    #[test]
    fn trace_parity_word_matches_dc_word_at_last_cycle() {
        let nl = xor_netlist();
        let sim = GateLevelSim::new(&nl);
        let mut stim = Stimulus::new(&nl);
        stim.pulse_input(0, 0);
        let trace = sim.run(&stim, 3);
        assert_eq!(trace.parity_word(), trace.dc_word_at(2));
    }

    #[test]
    fn clock_splitter_drop_fault_freezes_downstream_gates() {
        let nl = pipeline(3);
        let sim = GateLevelSim::new(&nl);
        // Fail the first clock splitter: every DFF downstream of it never
        // receives a clock and never emits.
        let spl = nl
            .nodes()
            .iter()
            .find(|n| n.kind == NodeKind::Cell(CellKind::Splitter))
            .unwrap()
            .id;
        let mut faults = FaultMap::healthy(&nl);
        faults.set(spl, CellFault::hard(FailureMode::DropPulse));
        let mut stim = Stimulus::new(&nl);
        stim.pulse_input(0, 0);
        let mut rng = StdRng::seed_from_u64(3);
        let trace = sim.run_with_faults(&stim, 5, &faults, &mut rng);
        assert_eq!(trace.pulse_count(0), 0);
    }
}
