//! Gate-level pulse simulation of SFQ netlists under process parameter
//! variations.
//!
//! The paper evaluates its encoders by simulating the transistor-level (JJ-
//! level) netlists in JoSIM with a `spread` applied to every circuit
//! parameter, then post-processing the waveforms in MATLAB. This crate is the
//! portable substitute for that flow: a cycle-driven pulse-level simulator
//! ([`sim::GateLevelSim`]) with SFQ-specific gate semantics (clocked gates,
//! fan-out-one splitters, toggling SFQ-to-DC output drivers) and a
//! margin-based PPV fault model ([`ppv::PpvModel`]) that converts sampled
//! parameter deviations into per-cell malfunction probabilities.
//!
//! The connection to the paper's Fig. 5 is direct: one sampled
//! [`ppv::ChipSample`] corresponds to one fabricated chip with specific
//! parameter values, and re-running the same encoder netlist over many chips
//! yields the distribution of erroneous messages that the figure plots.
//!
//! # Example
//!
//! ```
//! use sfq_netlist::{synth, Netlist, PortRef};
//! use sfq_sim::sim::{GateLevelSim, Stimulus};
//! use sfq_cells::CellKind;
//!
//! // A 1-bit pipeline: input -> DFF -> DFF -> output.
//! let mut nl = Netlist::new("pipe2");
//! let a = nl.add_input("a");
//! nl.add_clock("clk");
//! let end = synth::dff_chain(&mut nl, PortRef::of(a), 2, "a");
//! let out = nl.add_output("o");
//! nl.connect(end, out, 0);
//! synth::build_clock_tree(&mut nl, "clk");
//!
//! let sim = GateLevelSim::new(&nl);
//! let mut stim = Stimulus::new(&nl);
//! stim.pulse_input(0, 0); // pulse on input 0 in cycle 0
//! let trace = sim.run(&stim, 4);
//! // The pulse appears at the output two clock cycles later.
//! assert_eq!(trace.output_pulses(0), &[false, false, true, false]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod equivalence;
pub mod fault;
pub mod ppv;
pub mod sim;

pub use equivalence::{verify_encoder, EquivalenceConfig, EquivalenceMismatch};
pub use fault::{CellFault, FailureMode, FaultMap};
pub use ppv::{ChipSample, PpvModel};
pub use sim::{GateLevelSim, Stimulus, Trace};
