//! Gate-level functional-equivalence harness for synthesized encoders.
//!
//! The synthesis pipeline in `sfq-netlist` verifies itself at the IR level
//! (exact GF(2) expansion) after every pass; this module closes the loop at
//! the *gate* level: it simulates the emitted netlist pulse-by-pulse with
//! [`GateLevelSim`] and compares the DC word sampled at the encoding latency
//! against the reference encoding `c = m · G`.
//!
//! [`verifier`] packages the check in the shape
//! [`sfq_netlist::pass::PassManager::with_netlist_verifier`] expects, so
//! every catalog encoder is simulation-checked at synthesis time; the
//! exhaustive test-suite sweeps use [`verify_encoder`] directly with a
//! stronger [`EquivalenceConfig`].

use crate::sim::{GateLevelSim, Stimulus};
use gf2::{BitMat, BitVec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfq_netlist::pass::NetlistVerifier;
use sfq_netlist::Netlist;

/// How many messages [`verify_encoder`] drives through the netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EquivalenceConfig {
    /// Check every one of the `2^k` messages when `k` is at most this large.
    pub exhaustive_limit_k: usize,
    /// Beyond the exhaustive limit: number of seeded random messages, on top
    /// of the structured set (zero, all-ones, every unit vector, walking
    /// adjacent pairs).
    pub random_samples: usize,
    /// Seed of the random-message stream.
    pub seed: u64,
}

impl Default for EquivalenceConfig {
    fn default() -> Self {
        EquivalenceConfig {
            exhaustive_limit_k: 16,
            random_samples: 64,
            seed: 0x5ECD_EDE9,
        }
    }
}

impl EquivalenceConfig {
    /// A cheap configuration for synthesis-time checking (structured set
    /// plus a handful of random messages).
    #[must_use]
    pub fn quick() -> Self {
        EquivalenceConfig {
            exhaustive_limit_k: 8,
            random_samples: 8,
            ..Default::default()
        }
    }
}

/// A gate-level disagreement between the netlist and the generator matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceMismatch {
    /// The offending message.
    pub message: BitVec,
    /// The reference codeword `m · G`.
    pub expected: BitVec,
    /// What the simulated netlist produced.
    pub simulated: BitVec,
}

impl std::fmt::Display for EquivalenceMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "message {} encodes to {} but the netlist produced {}",
            self.message.to_string01(),
            self.expected.to_string01(),
            self.simulated.to_string01()
        )
    }
}

/// The messages the harness drives for a given `k`.
fn message_set(k: usize, config: &EquivalenceConfig) -> Vec<BitVec> {
    if k <= config.exhaustive_limit_k && k < usize::BITS as usize {
        return (0..1u64 << k).map(|m| BitVec::from_u64(k, m)).collect();
    }
    let mut messages = vec![BitVec::zeros(k), BitVec::ones(k)];
    for i in 0..k {
        let mut unit = BitVec::zeros(k);
        unit.set(i, true);
        messages.push(unit);
        let mut pair = BitVec::zeros(k);
        pair.set(i, true);
        pair.set((i + 1) % k, true);
        messages.push(pair);
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    for _ in 0..config.random_samples {
        messages.push((0..k).map(|_| rng.random::<u64>() & 1 == 1).collect());
    }
    messages
}

/// Simulates every configured message through the netlist and compares the
/// DC word at the encoding latency against `m · G`.
///
/// Returns the number of messages checked.
///
/// # Errors
/// Returns the first mismatching message.
///
/// # Panics
/// Panics if the netlist's input/output counts do not match the generator's
/// dimensions.
pub fn verify_encoder(
    netlist: &Netlist,
    generator: &BitMat,
    config: &EquivalenceConfig,
) -> Result<usize, EquivalenceMismatch> {
    let k = generator.rows();
    assert_eq!(netlist.inputs().len(), k, "input count vs generator rows");
    assert_eq!(
        netlist.outputs().len(),
        generator.cols(),
        "output count vs generator columns"
    );
    let sim = GateLevelSim::new(netlist);
    let latency = netlist.logic_depth();
    let messages = message_set(k, config);
    let checked = messages.len();
    for message in messages {
        let expected = generator.left_mul_vec(&message);
        let mut stimulus = Stimulus::new(netlist);
        stimulus.apply_word(&message, 0);
        let trace = sim.run(&stimulus, latency + 1);
        let simulated = trace.dc_word_at(latency);
        if simulated != expected {
            return Err(EquivalenceMismatch {
                message,
                expected,
                simulated,
            });
        }
    }
    Ok(checked)
}

/// The harness packaged as a pass-manager hook: attach with
/// `PassManager::standard(options).with_netlist_verifier(equivalence::verifier(config))`
/// and every synthesis run ends with a pulse-level simulation check.
#[must_use]
pub fn verifier(config: EquivalenceConfig) -> NetlistVerifier {
    Box::new(move |netlist, generator| {
        verify_encoder(netlist, generator, &config)
            .map(|_| ())
            .map_err(|m| m.to_string())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfq_cells::CellKind;
    use sfq_netlist::pass::{PassManager, PipelineOptions};
    use sfq_netlist::{synth, PortRef};

    fn hamming84_generator() -> BitMat {
        BitMat::from_str_rows(&["11100001", "10011001", "01010101", "11010010"])
    }

    #[test]
    fn pipeline_netlist_passes_exhaustive_equivalence() {
        let g = hamming84_generator();
        let result = synth::synthesize_encoder("h84", &g, PipelineOptions::default());
        let checked =
            verify_encoder(&result.netlist, &g, &EquivalenceConfig::default()).expect("bit-exact");
        assert_eq!(checked, 16, "k = 4 is checked exhaustively");
    }

    #[test]
    fn corrupted_netlist_is_rejected_with_the_offending_message() {
        let g = hamming84_generator();
        // Miswire c3 (= m1) to m2 by lying about the generator instead:
        // claim c3 should be m2.
        let mut wrong = g.clone();
        wrong.set(0, 2, false);
        wrong.set(1, 2, true);
        let result = synth::synthesize_encoder("h84", &g, PipelineOptions::default());
        let err = verify_encoder(&result.netlist, &wrong, &EquivalenceConfig::default())
            .expect_err("must disagree");
        assert_ne!(err.expected, err.simulated);
        assert!(err.to_string().contains("encodes to"));
    }

    #[test]
    fn structured_and_random_messages_are_used_beyond_the_exhaustive_limit() {
        let config = EquivalenceConfig {
            exhaustive_limit_k: 4,
            random_samples: 10,
            ..Default::default()
        };
        let k = 6;
        let messages = message_set(k, &config);
        // zero + ones + k units + k pairs + 10 random.
        assert_eq!(messages.len(), 2 + 2 * k + 10);
        assert!(messages.iter().all(|m| m.len() == k));
        // Exhaustive below the limit.
        assert_eq!(message_set(4, &config).len(), 16);
    }

    #[test]
    fn verifier_hook_plugs_into_the_pass_manager() {
        let g = hamming84_generator();
        let result = PassManager::standard(PipelineOptions::default())
            .with_netlist_verifier(verifier(EquivalenceConfig::quick()))
            .run("h84", &g)
            .expect("verified synthesis must succeed");
        assert_eq!(result.netlist.count_cells(CellKind::Xor), 6);
    }

    #[test]
    fn harness_accepts_hold_discipline_unbalanced_operands() {
        // A 3-term parity feeds a depth-0 input straight into a second-level
        // XOR under Hold; the toggling-driver argument must make the DC word
        // settle correctly anyway.
        let g = BitMat::from_str_rows(&["11", "01", "01"]);
        let result = synth::synthesize_encoder("p3", &g, PipelineOptions::default());
        verify_encoder(&result.netlist, &g, &EquivalenceConfig::default())
            .expect("hold discipline is parity-exact");
    }

    #[test]
    fn harness_checks_hand_built_netlists_too() {
        // input -> DFF -> output is the identity encoder for k = 1.
        let mut nl = sfq_netlist::Netlist::new("id1");
        let a = nl.add_input("m1");
        nl.add_clock("clk");
        let end = synth::dff_chain(&mut nl, PortRef::of(a), 1, "m1");
        let out = nl.add_output("c1");
        nl.connect(end, out, 0);
        synth::build_clock_tree(&mut nl, "clk");
        let g = BitMat::from_str_rows(&["1"]);
        verify_encoder(&nl, &g, &EquivalenceConfig::default()).expect("identity");
    }
}
