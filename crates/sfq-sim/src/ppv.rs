//! Process-parameter-variation (PPV) modelling.
//!
//! JoSIM's `spread` function (used by the paper) assigns every circuit
//! parameter — junction critical currents, inductances, resistances — an
//! independent deviation of up to ±20 % of its nominal value; each sampled
//! assignment corresponds to one fabricated chip. This module reproduces the
//! statistical effect of that procedure at the cell level:
//!
//! 1. for every Josephson junction of every cell, deviations are sampled for
//!    the three parameter classes (critical current, inductance, resistance);
//! 2. each cell's margin specification ([`sfq_cells::MarginSpec`]) defines the
//!    deviation envelope inside which the cell still operates; the *critical
//!    threshold* of each junction is itself uncertain (design corners,
//!    local defects), modelled by a lognormal-ish perturbation of the nominal
//!    margin;
//! 3. a junction pushed beyond its threshold hard-fails its cell; a junction
//!    close to the threshold contributes an intermittent (per-activation)
//!    malfunction probability, reflecting thermally assisted switching errors
//!    in a cell with almost-collapsed margins.
//!
//! The outcome is a [`FaultMap`] per sampled chip. Because the probability
//! that *some* junction of a cell leaves its margin grows with the number of
//! junctions, encoders with more JJs fail more often — the physical-size
//! versus code-strength trade-off that Fig. 5 of the paper demonstrates.

use crate::fault::{CellFault, FailureMode, FaultMap};
use rand::Rng;
use serde::{Deserialize, Serialize};
use sfq_cells::{CellLibrary, MarginSpec, ParameterClass};
use sfq_netlist::{Netlist, NodeKind};

/// Parameters of the PPV fault model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PpvModel {
    /// Maximum relative parameter deviation (JoSIM `spread`); the paper uses
    /// 0.20 (±20 %).
    pub spread: f64,
    /// Relative uncertainty of each junction's critical margin (how much the
    /// failure surface itself varies from junction to junction); models local
    /// defects and the difference between single-parameter and combined
    /// margins.
    pub margin_sigma: f64,
    /// Per-activation malfunction probability of a cell whose worst junction
    /// sits exactly at its critical threshold.
    pub marginal_failure_prob: f64,
    /// Exponent shaping how quickly the intermittent-failure probability
    /// falls off below the threshold (larger = only near-critical junctions
    /// misbehave).
    pub stress_exponent: f64,
    /// Global scale factor applied to every cell's margin envelope. This is
    /// the single calibration knob used to pin the uncoded 4-bit link to the
    /// paper's 80 % zero-error anchor point (see `cryolink::calibrate`);
    /// values above 1 model more robust cells, values below 1 tighter
    /// margins.
    pub margin_scale: f64,
    /// Fraction of malfunctions that manifest as spurious pulses rather than
    /// dropped pulses.
    pub spurious_fraction: f64,
    /// Cells whose sampled per-activation malfunction probability falls below
    /// this floor are treated as healthy (keeps the fault maps sparse and the
    /// Monte-Carlo loops fast without affecting the statistics).
    pub min_failure_prob: f64,
}

impl PpvModel {
    /// The model configuration used to reproduce Fig. 5: ±20 % spread and the
    /// calibration chosen so that the uncoded 4-bit link lands near the
    /// paper's 80 % zero-error probability anchor (see DESIGN.md §4).
    #[must_use]
    pub fn paper_defaults() -> Self {
        PpvModel {
            spread: 0.20,
            margin_sigma: 0.10,
            marginal_failure_prob: 0.35,
            stress_exponent: 12.0,
            spurious_fraction: 0.15,
            // Produced by `cargo run --release --example calibrate`: pins the
            // uncoded 4-bit link to the paper's 80.0 % zero-error anchor at
            // 1000 chips x 100 messages (achieved 0.799).
            margin_scale: 1.0699,
            min_failure_prob: 1e-4,
        }
    }

    /// Returns a copy with a different spread (used for the ±10 %/±30 %
    /// ablation sweeps).
    #[must_use]
    pub fn with_spread(mut self, spread: f64) -> Self {
        self.spread = spread;
        self
    }

    /// Returns a copy with a different margin scale (the calibration knob).
    #[must_use]
    pub fn with_margin_scale(mut self, margin_scale: f64) -> Self {
        self.margin_scale = margin_scale;
        self
    }

    /// Samples the malfunction probability of a single cell with `jj_count`
    /// junctions and margin envelope `margins`.
    ///
    /// Returns `(activation_failure_prob, hard_failed)`.
    fn sample_cell<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        jj_count: u32,
        margins: &MarginSpec,
    ) -> (f64, bool) {
        let mut survive_prob = 1.0f64;
        let mut hard_failed = false;
        for _ in 0..jj_count {
            for class in ParameterClass::ALL {
                let deviation = rng.random_range(-self.spread..=self.spread).abs();
                let nominal_margin = margins.for_class(class) * self.margin_scale;
                // The effective threshold of this particular junction: the
                // nominal margin perturbed by design/fabrication uncertainty.
                let noise: f64 = rng.random_range(-1.0..=1.0);
                let threshold = (nominal_margin * (1.0 + self.margin_sigma * noise)).max(1e-6);
                if deviation >= threshold {
                    hard_failed = true;
                } else {
                    let stress = deviation / threshold;
                    let q = self.marginal_failure_prob * stress.powf(self.stress_exponent);
                    survive_prob *= 1.0 - q.min(1.0);
                }
            }
        }
        if hard_failed {
            (1.0, true)
        } else {
            (1.0 - survive_prob, false)
        }
    }

    /// Samples one fabricated chip: a [`FaultMap`] for every cell of the
    /// netlist, using the per-cell JJ counts and margins of `library`.
    pub fn sample_chip<R: Rng + ?Sized>(
        &self,
        netlist: &Netlist,
        library: &CellLibrary,
        rng: &mut R,
    ) -> ChipSample {
        let mut faults = FaultMap::healthy(netlist);
        let mut hard_failures = 0usize;
        let mut marginal_cells = 0usize;
        for node in netlist.nodes() {
            let NodeKind::Cell(kind) = node.kind else {
                continue;
            };
            let params = library.params(kind);
            let (prob, hard) = self.sample_cell(rng, params.jj_count, &params.margins);
            if prob >= self.min_failure_prob {
                let mode = if rng.random::<f64>() < self.spurious_fraction {
                    FailureMode::SpuriousPulse
                } else {
                    FailureMode::DropPulse
                };
                faults.set(
                    node.id,
                    CellFault {
                        activation_failure_prob: prob,
                        mode,
                    },
                );
                if hard {
                    hard_failures += 1;
                } else {
                    marginal_cells += 1;
                }
            }
        }
        ChipSample {
            faults,
            hard_failures,
            marginal_cells,
        }
    }
}

impl Default for PpvModel {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// One sampled chip: the fault map plus summary statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipSample {
    /// Per-cell fault assignment.
    pub faults: FaultMap,
    /// Number of cells with a hard (always-failing) fault.
    pub hard_failures: usize,
    /// Number of cells with an intermittent fault.
    pub marginal_cells: usize,
}

impl ChipSample {
    /// Returns `true` if every cell on this chip is healthy.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        self.faults.is_healthy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfq_cells::CellKind;
    use sfq_netlist::Netlist;

    fn netlist_with_cells(kind: CellKind, count: usize) -> Netlist {
        let mut nl = Netlist::new("cells");
        for i in 0..count {
            nl.add_cell(kind, format!("cell{i}"));
        }
        nl
    }

    #[test]
    fn zero_spread_produces_healthy_chips() {
        let model = PpvModel::paper_defaults().with_spread(0.0);
        let lib = CellLibrary::coldflux();
        let nl = netlist_with_cells(CellKind::Xor, 20);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let chip = model.sample_chip(&nl, &lib, &mut rng);
            assert!(chip.is_healthy());
        }
    }

    #[test]
    fn larger_spread_means_more_faults() {
        let lib = CellLibrary::coldflux();
        let nl = netlist_with_cells(CellKind::Xor, 50);
        let count_faulty = |spread: f64, seed: u64| -> usize {
            let model = PpvModel::paper_defaults().with_spread(spread);
            let mut rng = StdRng::seed_from_u64(seed);
            (0..200)
                .map(|_| model.sample_chip(&nl, &lib, &mut rng).faults.faulty_count())
                .sum()
        };
        let low = count_faulty(0.10, 11);
        let high = count_faulty(0.30, 11);
        assert!(
            high > low,
            "fault count should grow with spread (low={low}, high={high})"
        );
    }

    #[test]
    fn cells_with_more_jjs_fail_more_often() {
        let lib = CellLibrary::coldflux();
        let model = PpvModel::paper_defaults().with_spread(0.30);
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 400;
        let mut count_for = |kind: CellKind| -> usize {
            let nl = netlist_with_cells(kind, 1);
            (0..trials)
                .filter(|_| !model.sample_chip(&nl, &lib, &mut rng).is_healthy())
                .count()
        };
        let xor_failures = count_for(CellKind::Xor); // 11 JJs
        let jtl_failures = count_for(CellKind::Jtl); // 2 JJs
        assert!(
            xor_failures > jtl_failures,
            "XOR (11 JJ) should fail more often than JTL (2 JJ): {xor_failures} vs {jtl_failures}"
        );
    }

    #[test]
    fn sampled_probabilities_are_valid() {
        let lib = CellLibrary::coldflux();
        let model = PpvModel::paper_defaults().with_spread(0.25);
        let nl = netlist_with_cells(CellKind::Dff, 30);
        let mut rng = StdRng::seed_from_u64(5);
        let chip = model.sample_chip(&nl, &lib, &mut rng);
        for (_, fault) in chip.faults.iter_faulty() {
            assert!(fault.activation_failure_prob > 0.0);
            assert!(fault.activation_failure_prob <= 1.0);
        }
        assert_eq!(
            chip.hard_failures + chip.marginal_cells,
            chip.faults.faulty_count()
        );
    }

    #[test]
    fn paper_defaults_spread_is_twenty_percent() {
        let model = PpvModel::paper_defaults();
        assert!((model.spread - 0.20).abs() < 1e-12);
    }
}
