//! Direct-dispatch decode kernels for codes with redundancy `r ≤ 8`.
//!
//! When the whole syndrome space fits 256 values, the decoder compiles into
//! a flat [`DirectTable`]: every syndrome maps to its action — accept,
//! flip (≤ 2 recorded positions, or a general mask), or flag. The kernels
//! here *index* that table instead of matching entries, which removes the
//! per-entry AND-tree overhead entirely:
//!
//! * [`run_direct4`] (`r ≤ 4`): the successive-halving tree the bucket walk
//!   used for prefixes already yields **all** `2^r` syndrome-equality lane
//!   masks — so each table action applies to its whole lane mask at once,
//!   never per lane.
//! * [`run_direct8`] (`5 ≤ r ≤ 8`): dense limbs are bit-transposed into
//!   per-lane syndrome bytes ([`gf2::syndrome_bytes`]) and each dirty lane
//!   applies its table entry branch-free (masked XORs); sparse limbs skip
//!   the transpose and gather each dirty lane's byte from the slices
//!   directly.

use ecc::BatchDecoded;
use gf2::{or_reduce, syndrome_bytes, BitSlice64};

use super::KernelStats;
use crate::MatchEntry;

/// Action flags of a [`DirectEntry`].
const APPLY1: u8 = 1 << 0;
const APPLY2: u8 = 1 << 1;
const FLAGGED: u8 = 1 << 2;
const CORRECTED: u8 = 1 << 3;
/// Correction flips more than two positions: apply via the `flip` mask.
const MULTI: u8 = 1 << 4;

/// Dirty-lane count at which [`run_direct8`] switches from per-lane byte
/// gathering to the whole-limb transpose. The transpose + 64 branch-free
/// applications cost ~1k ops; gathering costs ~35 ops per dirty lane.
const DENSE_LANES: u32 = 20;

/// Dirty-lane count at which [`run_direct8`] abandons per-lane work
/// entirely and partitions the limb into all `2^r` syndrome-equality masks
/// (the [`run_direct4`] strategy, full-width): `2·(2^r − 1)` ANDs plus one
/// wholesale table action per nonzero mask, independent of how many lanes
/// are dirty. Only worthwhile while the table is small — the partition's
/// fixed cost doubles with every syndrome bit, so `r ≥ 7` always prefers
/// the transposed per-lane path (see [`PARTITION_MAX_REDUNDANCY`]).
const PARTITION_LANES: u32 = 32;

/// Largest redundancy for which the full-width partition can beat the
/// transposed dense path: at `r = 7` its `2·(2^r − 1)` AND tree plus
/// per-syndrome scan already costs more than 64 branch-free lane applies.
const PARTITION_MAX_REDUNDANCY: usize = 6;

/// Base of the dense path's eight discard slots (248..=255): flips of
/// non-correcting entries XOR into `DUMP_BASE | (syndrome & 7)` and are
/// never read. Spreading the discards over eight slots matters: weight-1
/// corrections are the common case, and a single shared slot would chain
/// every lane's second XOR through one store-forwarded address. Positions
/// are `< MAX_BLOCK_LENGTH = 128`, so the slots never alias a real lane.
const DUMP_BASE: u16 = 248;

/// One syndrome's compiled action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DirectEntry {
    /// First / second flip position (codeword lane index); 0 when unused
    /// (the masked apply then XORs zero into lane 0 — a no-op).
    p1: u8,
    p2: u8,
    /// [`APPLY1`] | [`APPLY2`] | [`FLAGGED`] | [`CORRECTED`] | [`MULTI`];
    /// `0` = accept (the zero syndrome, and values above `2^r`).
    flags: u8,
    /// Full flip mask, used by the [`MULTI`] path and [`run_direct4`].
    flip: u128,
}

/// The flat syndrome→action table driving the direct kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct DirectTable {
    /// Indexed by syndrome value; length 256 (bits ≥ `redundancy` unused).
    entries: Vec<DirectEntry>,
    /// The dense-path view of `entries`: `p1 | p2 << 8`, with unused slots
    /// (non-correcting entries, absent second flips) redirected to the
    /// [`DUMP`] accumulator slot. The branch-free inner loop then issues one
    /// 2-byte load and two unconditional XORs per lane — no flag masks.
    /// Boxed so the table doesn't bloat every `DecodeEngine` by 512 bytes;
    /// the dense loop hoists the reference once per limb.
    packed: Box<[u16; 256]>,
    /// Syndrome width `r ≤ 8`.
    redundancy: usize,
    /// Any correction flips more than two positions (e.g. repetition
    /// decoding): [`run_direct8`] then always uses its per-lane path, whose
    /// mask loop handles arbitrary flips.
    multi_flip: bool,
}

impl DirectTable {
    /// Compiles the match entries of a program with `redundancy ≤ 8` into a
    /// flat table: matched syndromes act, the zero syndrome accepts, and
    /// every other value flags (the complement rule, now materialized).
    pub(crate) fn compile(entries: &[MatchEntry], redundancy: usize) -> Self {
        debug_assert!(redundancy <= 8);
        let mut table = vec![
            DirectEntry {
                p1: 0,
                p2: 0,
                flags: 0,
                flip: 0,
            };
            256
        ];
        for value in table.iter_mut().take(1usize << redundancy).skip(1) {
            value.flags = FLAGGED;
        }
        let mut multi_flip = false;
        for entry in entries {
            let s = entry.pattern as usize;
            debug_assert!(s > 0 && s < (1 << redundancy));
            let weight = entry.flip.count_ones();
            let p1 = entry.flip.trailing_zeros() as u8;
            let rest = entry.flip & (entry.flip - 1);
            let p2 = if weight >= 2 {
                rest.trailing_zeros() as u8
            } else {
                0
            };
            let mut flags = CORRECTED | APPLY1;
            if weight >= 2 {
                flags |= APPLY2;
            }
            if weight > 2 {
                flags |= MULTI;
                multi_flip = true;
            }
            table[s] = DirectEntry {
                p1,
                p2,
                flags,
                flip: entry.flip,
            };
        }
        let mut packed = Box::new([0u16; 256]);
        for (s, (slot, entry)) in packed.iter_mut().zip(&table).enumerate() {
            let dump = DUMP_BASE | (s as u16 & 7);
            let correcting = entry.flags & CORRECTED != 0;
            let p1 = if correcting {
                u16::from(entry.p1)
            } else {
                dump
            };
            let p2 = if correcting && entry.flags & APPLY2 != 0 {
                u16::from(entry.p2)
            } else {
                dump
            };
            *slot = p1 | (p2 << 8);
        }
        DirectTable {
            entries: table,
            packed,
            redundancy,
            multi_flip,
        }
    }
}

/// The `r ≤ 4` direct kernel: successive halving partitions each limb's
/// lanes into all `2^r` syndrome-equality masks, and each mask takes its
/// table action wholesale.
pub(crate) fn run_direct4(
    table: &DirectTable,
    syndromes: &BitSlice64,
    out: &mut BatchDecoded,
    stats: &mut KernelStats,
) {
    let words = syndromes.words();
    let tail = syndromes.tail_mask();
    let r = table.redundancy;
    debug_assert!(r <= 4);
    let mut gather = [0u64; 4];
    for w in 0..words {
        let gather = &mut gather[..r];
        syndromes.gather_word(w, gather);
        if or_reduce(gather) == 0 {
            stats.clean_limbs += 1;
            continue;
        }
        let valid = if w + 1 == words { tail } else { u64::MAX };

        // masks[s] = lanes whose whole syndrome equals s (partition of
        // `valid`) — the bucket walk's prefix tree, now covering all of r.
        let mut masks = [0u64; 16];
        masks[0] = valid;
        for (t, &slice) in gather.iter().enumerate() {
            let width = 1usize << t;
            for i in 0..width {
                let m = masks[i];
                masks[i | width] = m & slice;
                masks[i] = m & !slice;
            }
        }

        let mut matched = 0u64;
        let mut flagged = 0u64;
        for (s, &m) in masks.iter().enumerate().take(1 << r).skip(1) {
            if m == 0 {
                continue;
            }
            let entry = table.entries[s];
            if entry.flags & FLAGGED != 0 {
                flagged |= m;
                continue;
            }
            matched |= m;
            let mut flip = entry.flip;
            while flip != 0 {
                let p = flip.trailing_zeros() as usize;
                out.codewords.lane_mut(p)[w] ^= m;
                flip &= flip - 1;
            }
        }
        out.corrected[w] = matched;
        out.flagged[w] = flagged;
        stats.lanes_matched += u64::from(matched.count_ones());
        stats.lanes_flagged += u64::from(flagged.count_ones());
    }
}

/// The full-width successive-halving partition: `masks[s]` = lanes whose
/// whole syndrome equals `s`, then each nonzero mask takes its table action
/// wholesale. Returns `(matched, flagged)` for the word.
#[inline]
fn partition_word(
    table: &DirectTable,
    gather: &[u64],
    valid: u64,
    w: usize,
    out: &mut BatchDecoded,
) -> (u64, u64) {
    let r = table.redundancy;
    let mut masks = [0u64; 256];
    masks[0] = valid;
    for (t, &slice) in gather.iter().enumerate() {
        let width = 1usize << t;
        for i in 0..width {
            let m = masks[i];
            masks[i | width] = m & slice;
            masks[i] = m & !slice;
        }
    }
    let mut matched = 0u64;
    let mut flagged = 0u64;
    for (s, &m) in masks.iter().enumerate().take(1 << r).skip(1) {
        if m == 0 {
            continue;
        }
        let entry = table.entries[s];
        if entry.flags & FLAGGED != 0 {
            flagged |= m;
            continue;
        }
        matched |= m;
        let mut flip = entry.flip;
        while flip != 0 {
            let p = flip.trailing_zeros() as usize;
            out.codewords.lane_mut(p)[w] ^= m;
            flip &= flip - 1;
        }
    }
    (matched, flagged)
}

/// The `5 ≤ r ≤ 8` direct kernel, density-tiered: all-dirty limbs are
/// partitioned into syndrome-equality masks (per-syndrome cost, not
/// per-lane), moderately dirty limbs are byte-transposed and walked
/// branch-free per lane, and sparse limbs gather each dirty lane's byte
/// straight from the slices.
pub(crate) fn run_direct8(
    table: &DirectTable,
    syndromes: &BitSlice64,
    out: &mut BatchDecoded,
    stats: &mut KernelStats,
) {
    let words = syndromes.words();
    let tail = syndromes.tail_mask();
    let r = table.redundancy;
    debug_assert!((5..=8).contains(&r));
    let partition_lanes = PARTITION_LANES.min(1 << (r - 2));
    let n = out.codewords.bits();
    let stride = out.codewords.words();
    let mut gather = [0u64; 8];
    // Position-indexed flip accumulator for the dense path: `p1`/`p2` come
    // from a packed byte, so indexing needs no bounds check, and the
    // codeword lanes are touched once per limb (the sweep) instead of twice
    // per dirty lane. The sweep re-zeros every entry it drains, keeping the
    // array all-zero between limbs.
    let mut flips = [0u64; 256];
    for w in 0..words {
        let gather = &mut gather[..r];
        syndromes.gather_word(w, gather);
        let valid = if w + 1 == words { tail } else { u64::MAX };
        // Invalid lanes carry all-zero slices, so they are never dirty; the
        // `& valid` documents the invariant rather than enforcing it.
        let dirty = or_reduce(gather) & valid;
        if dirty == 0 {
            stats.clean_limbs += 1;
            continue;
        }

        let mut matched = 0u64;
        let mut flagged = 0u64;
        if r <= PARTITION_MAX_REDUNDANCY && dirty.count_ones() >= partition_lanes {
            (matched, flagged) = partition_word(table, gather, valid, w, out);
        } else if !table.multi_flip && dirty.count_ones() >= DENSE_LANES {
            // Dense: one transpose yields every lane's syndrome byte, then
            // every lane issues exactly two unconditional XORs — its packed
            // entry's flip targets, which for non-correcting syndromes are
            // the discard slot. No flag logic runs per lane: a lane was
            // corrected iff the sweep finds its bit in a real position's
            // accumulator (every correction flips at least one position),
            // and every other dirty lane is flagged by the complement rule.
            let mut bytes = [0u64; 8];
            syndrome_bytes(gather, &mut bytes);
            let packed: &[u16; 256] = &table.packed;
            for (q, &group_word) in bytes.iter().enumerate() {
                if group_word == 0 {
                    continue;
                }
                let mut group = group_word;
                for j in 0..8 {
                    let byte = (group & 0xFF) as usize;
                    group >>= 8;
                    let entry = packed[byte];
                    let bit = 1u64 << (8 * q + j);
                    flips[(entry & 0xFF) as usize] ^= bit;
                    flips[(entry >> 8) as usize] ^= bit;
                }
            }
            let cw = out.codewords.lane_words_mut();
            for (p, flip) in flips.iter_mut().enumerate().take(n) {
                let f = *flip;
                if f != 0 {
                    matched |= f;
                    cw[p * stride + w] ^= f;
                    *flip = 0;
                }
            }
            flips[DUMP_BASE as usize..].fill(0);
            flagged = dirty & !matched;
        } else {
            // Sparse: gather each dirty lane's syndrome byte straight from
            // the slices; no transpose.
            let mut rest = dirty;
            while rest != 0 {
                let lane = rest.trailing_zeros();
                let bit = 1u64 << lane;
                rest &= rest - 1;
                let mut byte = 0usize;
                for (t, &slice) in gather.iter().enumerate() {
                    byte |= (((slice >> lane) & 1) as usize) << t;
                }
                let entry = table.entries[byte];
                if entry.flags & FLAGGED != 0 {
                    flagged |= bit;
                    continue;
                }
                matched |= bit;
                let mut flip = entry.flip;
                while flip != 0 {
                    let p = flip.trailing_zeros() as usize;
                    out.codewords.lane_mut(p)[w] ^= bit;
                    flip &= flip - 1;
                }
            }
        }
        out.corrected[w] = matched;
        out.flagged[w] = flagged;
        stats.lanes_matched += u64::from(matched.count_ones());
        stats.lanes_flagged += u64::from(flagged.count_ones());
    }
}
