//! The decode-kernel family and its runtime dispatch.
//!
//! One compiled [`ColumnMatchProgram`](crate::BatchCodec) can be executed by
//! several interchangeable kernels, all proven bit-identical by the
//! workspace's forced-dispatch equivalence suite:
//!
//! * **walk-u64 / walk-u128 / walk-w256** — the prefix-bucket AND-tree walk,
//!   generic over the [`gf2::Limb`] width. Wider limbs process 2–4 `u64`
//!   words of the batch per reduction step; the 256-bit limb ([`wide::W256`])
//!   is a safe software-SIMD type the backend lowers to AVX2 vector
//!   instructions when available.
//! * **direct4 / direct8** — direct-dispatch kernels for codes with
//!   redundancy `r ≤ 8`, where the whole syndrome→action map fits a
//!   256-entry table. `direct4` (`r ≤ 4`) partitions the lanes into all
//!   `2^r` syndrome-equality masks by successive halving and applies each
//!   table action to its whole mask at once. `direct8` (`5 ≤ r ≤ 8`)
//!   bit-transposes the syndrome slices into per-lane syndrome *bytes*
//!   ([`gf2::syndrome_bytes`]) and walks the dirty lanes branch-free — no
//!   per-entry matching at all, which is what removes the bucket-walk
//!   overhead that made small codes slower than the old action table.
//!
//! Dispatch is automatic: direct kernels whenever the program carries a
//! direct table (see [`SyndromeClass::direct_dispatch_eligible`]
//! (ecc::SyndromeClass::direct_dispatch_eligible)), otherwise the widest
//! walk limb the batch length and the CPU justify. The `SFQ_BATCH_KERNEL`
//! environment variable (or [`BatchCodec::with_kernel`]
//! (crate::BatchCodec::with_kernel)) pins a kernel for testing; every
//! kernel runs on every machine — feature detection only affects which one
//! *auto* picks.

pub(crate) mod bitflip;
pub(crate) mod direct;
pub(crate) mod sliced;
pub(crate) mod wide;

/// A decode-kernel override: which kernel executes the column-matching
/// program. `Auto` (the default) lets dispatch choose.
///
/// Settable per codec with [`BatchCodec::with_kernel`]
/// (crate::BatchCodec::with_kernel) or process-wide with the
/// `SFQ_BATCH_KERNEL` environment variable (values: `auto`, `scalar-u64`,
/// `u128`, `wide256`, `direct`), read once at codec construction. Forcing
/// `direct` on a code whose redundancy exceeds 8 falls back to the scalar
/// `u64` walk; every other choice is honored on every machine. Algebraic
/// (BCH) codecs use the sliced-syndrome engine regardless of the override —
/// the override selects among column-matching kernels only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Dispatch decides (the default).
    Auto,
    /// Force the one-word (`u64`) bucket walk — the reference kernel.
    ScalarU64,
    /// Force the two-word (`u128`) bucket walk.
    U128,
    /// Force the four-word software-SIMD bucket walk (256-bit limb).
    Wide256,
    /// Force direct dispatch (`direct4`/`direct8`) where eligible.
    Direct,
}

/// An unrecognized kernel-override value (from `SFQ_BATCH_KERNEL` or
/// [`KernelKind::parse`]). Carries the offending string; the [`Display`]
/// (std::fmt::Display) message lists the accepted values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelEnvError {
    value: String,
}

impl KernelEnvError {
    /// The rejected override string, verbatim.
    #[must_use]
    pub fn value(&self) -> &str {
        &self.value
    }
}

impl std::fmt::Display for KernelEnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SFQ_BATCH_KERNEL={:?} is not one of \
             auto | scalar-u64 | u128 | wide256 | direct",
            self.value
        )
    }
}

impl std::error::Error for KernelEnvError {}

impl KernelKind {
    /// Parses a kernel-override string (the `SFQ_BATCH_KERNEL` value
    /// grammar). The empty string means `auto`.
    ///
    /// # Errors
    /// Returns [`KernelEnvError`] on an unrecognized value.
    pub fn parse(value: &str) -> Result<Self, KernelEnvError> {
        match value {
            "" | "auto" => Ok(KernelKind::Auto),
            "scalar-u64" => Ok(KernelKind::ScalarU64),
            "u128" => Ok(KernelKind::U128),
            "wide256" => Ok(KernelKind::Wide256),
            "direct" => Ok(KernelKind::Direct),
            other => Err(KernelEnvError {
                value: other.to_owned(),
            }),
        }
    }

    /// Reads and validates the `SFQ_BATCH_KERNEL` environment variable.
    /// Unset parses as `Auto`.
    ///
    /// Long-running services should call this once at startup and surface
    /// the error to the operator; codec construction itself never aborts on
    /// a bad value (see [`KernelKind::from_env_or_auto`]).
    ///
    /// # Errors
    /// Returns [`KernelEnvError`] when the variable is set to an
    /// unrecognized value.
    pub fn from_env() -> Result<Self, KernelEnvError> {
        match std::env::var("SFQ_BATCH_KERNEL") {
            Err(_) => Ok(KernelKind::Auto),
            Ok(value) => Self::parse(&value),
        }
    }

    /// The environment read used at codec construction: an unrecognized
    /// value falls back to `Auto` instead of aborting the process — bad env
    /// config must not take down a long-running scrubbing service. The
    /// rejection is still loud: a warning is printed once per process and
    /// every affected construction bumps the `batch.kernel.env_error`
    /// counter. CI matrix typos are caught by the dispatch workflow's
    /// `kernel_env_parses` test, which asserts [`KernelKind::from_env`]
    /// succeeds under each pinned value.
    pub(crate) fn from_env_or_auto() -> Self {
        Self::from_env().unwrap_or_else(|error| {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!("warning: {error}; falling back to auto dispatch");
            });
            sfq_telemetry::global()
                .counter("batch.kernel.env_error")
                .inc();
            KernelKind::Auto
        })
    }
}

/// The concrete kernel dispatch resolves to for one decode call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum KernelChoice {
    Direct4,
    Direct8,
    Walk64,
    Walk128,
    Walk256,
}

impl KernelChoice {
    /// Every kernel, in [`KernelChoice::index`] order (sizing the per-codec
    /// telemetry counter tables).
    pub(crate) const ALL: [KernelChoice; 5] = [
        KernelChoice::Direct4,
        KernelChoice::Direct8,
        KernelChoice::Walk64,
        KernelChoice::Walk128,
        KernelChoice::Walk256,
    ];

    /// Dense index into [`KernelChoice::ALL`].
    pub(crate) fn index(self) -> usize {
        match self {
            KernelChoice::Direct4 => 0,
            KernelChoice::Direct8 => 1,
            KernelChoice::Walk64 => 2,
            KernelChoice::Walk128 => 3,
            KernelChoice::Walk256 => 4,
        }
    }

    /// Stable kernel name, used by telemetry and bench reports.
    pub(crate) fn name(self) -> &'static str {
        match self {
            KernelChoice::Direct4 => "direct4",
            KernelChoice::Direct8 => "direct8",
            KernelChoice::Walk64 => "walk-u64",
            KernelChoice::Walk128 => "walk-u128",
            KernelChoice::Walk256 => "walk-w256",
        }
    }
}

/// Whether the running CPU advertises AVX2 (used only to decide whether the
/// `wide256` walk is worth *auto*-selecting; the kernel itself is portable
/// safe code and runs anywhere).
#[cfg(target_arch = "x86_64")]
pub(crate) fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

/// Non-x86 targets: the four-word limb is never auto-preferred (it can
/// still be forced and stays correct — just not profitably vectorized).
#[cfg(not(target_arch = "x86_64"))]
pub(crate) fn avx2_available() -> bool {
    false
}

/// Resolves the kernel for one decode call.
///
/// * An override pins the family: forced `direct` degrades to the scalar
///   walk when the program compiled no direct table (`r > 8`).
/// * `Auto` prefers direct dispatch wherever a table exists; otherwise the
///   widest walk limb justified by the batch length (no point loading
///   four-word limbs for a one-word batch) and, for `wide256`, by AVX2.
pub(crate) fn select(
    override_kind: KernelKind,
    has_direct: bool,
    redundancy: usize,
    words: usize,
) -> KernelChoice {
    let direct_choice = if redundancy <= 4 {
        KernelChoice::Direct4
    } else {
        KernelChoice::Direct8
    };
    match override_kind {
        KernelKind::ScalarU64 => KernelChoice::Walk64,
        KernelKind::U128 => KernelChoice::Walk128,
        KernelKind::Wide256 => KernelChoice::Walk256,
        KernelKind::Direct => {
            if has_direct {
                direct_choice
            } else {
                KernelChoice::Walk64
            }
        }
        KernelKind::Auto => {
            if has_direct {
                direct_choice
            } else if words >= 4 && avx2_available() {
                KernelChoice::Walk256
            } else if words >= 2 {
                KernelChoice::Walk128
            } else {
                KernelChoice::Walk64
            }
        }
    }
}

/// Per-call kernel statistics, accumulated in plain locals by every kernel
/// and flushed to the telemetry registry once per decode call. The direct
/// kernels have no buckets or entries to count — those stay zero.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct KernelStats {
    pub clean_limbs: u64,
    pub buckets_visited: u64,
    pub buckets_skipped: u64,
    pub entries_tested: u64,
    pub lanes_matched: u64,
    pub lanes_flagged: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_prefers_direct_then_width() {
        assert_eq!(select(KernelKind::Auto, true, 3, 64), KernelChoice::Direct4);
        assert_eq!(select(KernelKind::Auto, true, 8, 1), KernelChoice::Direct8);
        // Without a direct table the width depends on batch length.
        assert_eq!(select(KernelKind::Auto, false, 21, 1), KernelChoice::Walk64);
        let wide = select(KernelKind::Auto, false, 21, 64);
        if avx2_available() {
            assert_eq!(wide, KernelChoice::Walk256);
        } else {
            assert_eq!(wide, KernelChoice::Walk128);
        }
        assert_eq!(
            select(KernelKind::Auto, false, 21, 2),
            KernelChoice::Walk128
        );
    }

    #[test]
    fn overrides_pin_the_kernel() {
        assert_eq!(
            select(KernelKind::ScalarU64, true, 3, 64),
            KernelChoice::Walk64
        );
        assert_eq!(select(KernelKind::U128, true, 3, 1), KernelChoice::Walk128);
        assert_eq!(
            select(KernelKind::Wide256, false, 21, 1),
            KernelChoice::Walk256
        );
        assert_eq!(
            select(KernelKind::Direct, true, 5, 7),
            KernelChoice::Direct8
        );
        // Forced direct without a table degrades to the reference walk.
        assert_eq!(
            select(KernelKind::Direct, false, 21, 64),
            KernelChoice::Walk64
        );
    }

    #[test]
    fn kernel_override_grammar_parses() {
        for (value, kind) in [
            ("", KernelKind::Auto),
            ("auto", KernelKind::Auto),
            ("scalar-u64", KernelKind::ScalarU64),
            ("u128", KernelKind::U128),
            ("wide256", KernelKind::Wide256),
            ("direct", KernelKind::Direct),
        ] {
            assert_eq!(KernelKind::parse(value), Ok(kind), "{value:?}");
        }
        let error = KernelKind::parse("wide-256").unwrap_err();
        assert_eq!(error.value(), "wide-256");
        let message = error.to_string();
        assert!(message.contains("wide-256"), "{message}");
        assert!(message.contains("scalar-u64"), "{message}");
    }

    /// Guards the CI dispatch matrix: each leg pins `SFQ_BATCH_KERNEL`, and
    /// this test failing under a pinned value means the matrix entry is a
    /// typo (construction itself no longer panics — it falls back to auto —
    /// so this is where a bad matrix value fails loudly).
    #[test]
    fn kernel_env_parses() {
        if let Err(error) = KernelKind::from_env() {
            panic!("invalid SFQ_BATCH_KERNEL in the environment: {error}");
        }
    }

    #[test]
    fn kernel_names_are_stable() {
        for (choice, name) in [
            (KernelChoice::Direct4, "direct4"),
            (KernelChoice::Direct8, "direct8"),
            (KernelChoice::Walk64, "walk-u64"),
            (KernelChoice::Walk128, "walk-u128"),
            (KernelChoice::Walk256, "walk-w256"),
        ] {
            assert_eq!(choice.name(), name);
        }
    }
}
