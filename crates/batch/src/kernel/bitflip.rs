//! The whole-limb bit-flipping kernel for iteratively decoded (LDPC) codes.
//!
//! Unlike the algebraic engines, nothing here is per-lane: a synchronous
//! bit-flip round *is* bit-sliced work. Each round computes every low-density
//! check parity as one XOR chain over its support lanes (shared by 64 words),
//! then flips each variable by a whole-limb 3-input majority of its check
//! slices. Even the all-dirty worst case never unpacks a lane — the first
//! decode engine in this crate with that property.
//!
//! The schedule is the synchronous one contracted by
//! [`ecc::IterativeDecode`]: all parities from one snapshot, all flips at
//! once. Converged lanes are fixed points (zero parities → zero majorities),
//! so running a limb to the shared cap is bit-identical to the scalar
//! decoder's per-word early exit; a limb whose lanes have all converged or
//! stalled breaks out early. Classification is by final parity: a lane that
//! started dirty and ends with clean checks was corrected, anything still
//! unsatisfied at the cap raises the error flag.

use ecc::{BatchDecoded, BitFlipPlan};
use gf2::{or_reduce, BitSlice64};

/// Upper bound on the number of low-density checks (parity slices live in a
/// fixed stack array). The catalog's LDPC(60,32) uses 30.
const MAX_CHECKS: usize = 64;

/// Per-call statistics of the bit-flip kernel, flushed to the
/// `batch.ldpc.*` counters once per decode call.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct BitFlipStats {
    /// Limbs whose syndromes were all zero (short-circuited).
    pub clean_limbs: u64,
    /// Limbs that ran at least one synchronous flip round.
    pub flip_limbs: u64,
    /// Lanes with a nonzero syndrome.
    pub dirty_lanes: u64,
    /// Dirty lanes whose checks all cleared (corrected).
    pub corrected: u64,
    /// Dirty lanes still unsatisfied at the iteration cap (flagged).
    pub flagged: u64,
    /// Synchronous rounds executed across all limbs.
    pub rounds: u64,
    /// Variable flips applied (lane-bits across all rounds).
    pub flips: u64,
}

/// Decodes one batch with the whole-limb bit-flipping engine.
///
/// `out.codewords` must already hold a copy of the received batch; rounds
/// mutate it in place. `syndromes` are the full-rank `H′` slices used only
/// for the dirty screen — the flip rounds recompute the *low-density* check
/// parities from the codeword lanes each round (same row space, so the two
/// agree on which lanes are clean). `gather` is the per-limb syndrome
/// scratch (`redundancy` words).
pub(crate) fn run_bit_flip(
    plan: &BitFlipPlan,
    received: &BitSlice64,
    syndromes: &BitSlice64,
    gather: &mut [u64],
    out: &mut BatchDecoded,
    stats: &mut BitFlipStats,
) {
    let words = syndromes.words();
    let tail = syndromes.tail_mask();
    let checks = plan.checks();
    debug_assert!(checks <= MAX_CHECKS);
    let mut parity = [0u64; MAX_CHECKS];

    // One check parity slice: XOR chain over the support lanes of limb `w`.
    let parity_slice = |out: &BatchDecoded, support: u128, w: usize| -> u64 {
        let mut acc = 0u64;
        let mut rest = support;
        while rest != 0 {
            let p = rest.trailing_zeros() as usize;
            acc ^= out.codewords.lane(p)[w];
            rest &= rest - 1;
        }
        acc
    };

    for w in 0..words {
        let valid = if w + 1 == words { tail } else { u64::MAX };
        syndromes.gather_word(w, gather);
        let dirty = or_reduce(gather) & valid;
        if dirty == 0 {
            stats.clean_limbs += 1;
            continue;
        }
        stats.flip_limbs += 1;
        stats.dirty_lanes += u64::from(dirty.count_ones());

        for _ in 0..plan.max_iterations {
            let mut unsat = 0u64;
            for (c, &support) in plan.check_supports.iter().enumerate() {
                let p = parity_slice(out, support, w) & valid;
                parity[c] = p;
                unsat |= p;
            }
            if unsat == 0 {
                break;
            }
            stats.rounds += 1;
            let mut any_flip = 0u64;
            for (j, vc) in plan.var_checks.iter().enumerate() {
                let (a, b, c) = (parity[vc[0]], parity[vc[1]], parity[vc[2]]);
                let flip = ((a & b) | (a & c) | (b & c)) & valid;
                if flip != 0 {
                    out.codewords.lane_mut(j)[w] ^= flip;
                    any_flip |= flip;
                    stats.flips += u64::from(flip.count_ones());
                }
            }
            if any_flip == 0 {
                // Every lane has converged or stalled: further rounds are
                // no-ops, exactly like the scalar decoder's stall break.
                break;
            }
        }

        // Final classification by residual low-density parity. Clean lanes
        // never flipped (zero parities → zero majorities), so the residual
        // is confined to the initially dirty lanes.
        let mut residual = 0u64;
        for &support in &plan.check_supports {
            residual |= parity_slice(out, support, w) & valid;
        }
        let flagged = residual & dirty;
        let corrected = dirty & !flagged;
        out.flagged[w] |= flagged;
        out.corrected[w] |= corrected;
        stats.flagged += u64::from(flagged.count_ones());
        stats.corrected += u64::from(corrected.count_ones());

        // Flagged lanes deliver the received word unchanged, like every
        // other engine: undo whatever partial flips the rounds left behind.
        if flagged != 0 {
            for p in 0..received.bits() {
                let lane = out.codewords.lane(p)[w];
                out.codewords.lane_mut(p)[w] = (lane & !flagged) | (received.lane(p)[w] & flagged);
            }
        }
    }
}
