//! The width-generic prefix-bucket walk kernel and the 256-bit limb.
//!
//! [`run_walk`] is the original per-`u64` column-matching loop made generic
//! over [`gf2::Limb`]: every mask, reduction, and flip operates on
//! `L::WORDS` consecutive words of the batch at once. Instantiated at `u64`
//! it *is* the reference kernel; at `u128` and [`W256`] each AND/XNOR
//! reduction step covers 128 / 256 messages.
//!
//! [`W256`] is a software-SIMD limb: four `u64`s combined with element-wise
//! bitwise ops in safe code (`sfq-batch` forbids `unsafe`, so no intrinsics).
//! The fixed-width inner loops are exactly the shape LLVM's auto-vectorizer
//! turns into 256-bit `vpand`/`vpor`/`vpxor` when compiling for a CPU with
//! AVX2; runtime feature detection therefore gates only whether dispatch
//! *prefers* this limb, never whether it runs correctly.

use ecc::BatchDecoded;
use gf2::{and_xnor_reduce_limb, or_reduce_limb, BitSlice64, Limb};

use super::KernelStats;
use crate::{ColumnMatchProgram, PREFIX_SLOTS};

/// Upper bound on `Limb::WORDS` across the kernel family (sizing the
/// per-chunk validity buffer).
const MAX_LIMB_WORDS: usize = 4;

/// Upper bound on syndrome lanes (`r < MAX_BLOCK_LENGTH`), sizing the
/// per-call gather buffer.
const MAX_SLICES: usize = 128;

/// A 256-bit limb: four `u64` words, element-wise ops, no carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct W256([u64; 4]);

impl Limb for W256 {
    const WORDS: usize = 4;
    const ZERO: Self = W256([0; 4]);

    #[inline]
    fn load(words: &[u64]) -> Self {
        W256([words[0], words[1], words[2], words[3]])
    }

    #[inline]
    fn store(self, words: &mut [u64]) {
        words[..4].copy_from_slice(&self.0);
    }

    #[inline]
    fn xor_into(self, words: &mut [u64]) {
        for (w, x) in words.iter_mut().zip(self.0) {
            *w ^= x;
        }
    }

    #[inline]
    fn and(self, other: Self) -> Self {
        W256(std::array::from_fn(|i| self.0[i] & other.0[i]))
    }

    #[inline]
    fn or(self, other: Self) -> Self {
        W256(std::array::from_fn(|i| self.0[i] | other.0[i]))
    }

    #[inline]
    fn xor(self, other: Self) -> Self {
        W256(std::array::from_fn(|i| self.0[i] ^ other.0[i]))
    }

    #[inline]
    fn not(self) -> Self {
        W256(std::array::from_fn(|i| !self.0[i]))
    }

    #[inline]
    fn is_zero(self) -> bool {
        (self.0[0] | self.0[1] | self.0[2] | self.0[3]) == 0
    }

    #[inline]
    fn count_ones(self) -> u32 {
        self.0.iter().map(|w| w.count_ones()).sum()
    }
}

/// Executes the column-matching program over the word range
/// `[first, last)` with limb width `L`, writing corrections, `corrected`,
/// and `flagged` words into `out`.
///
/// The range length must be a multiple of `L::WORDS` (see
/// [`run_walk_chunked`] for the ragged tail); the batch's partial last word
/// is located from `syndromes` itself so invalid lanes never match or flag.
pub(crate) fn run_walk<L: Limb>(
    program: &ColumnMatchProgram,
    syndromes: &BitSlice64,
    first: usize,
    last: usize,
    out: &mut BatchDecoded,
    stats: &mut KernelStats,
) {
    debug_assert_eq!((last - first) % L::WORDS, 0);
    let total_words = syndromes.words();
    let tail = syndromes.tail_mask();
    let redundancy = syndromes.bits();
    debug_assert!(redundancy <= MAX_SLICES);
    let prefix_bits = program.prefix_bits;
    let mut gather = [L::ZERO; MAX_SLICES];
    let mut valid_words = [u64::MAX; MAX_LIMB_WORDS];

    let mut base = first;
    while base < last {
        let gather = &mut gather[..redundancy];
        for (t, slot) in gather.iter_mut().enumerate() {
            *slot = L::load(&syndromes.lane(t)[base..]);
        }

        // Clean-chunk short-circuit: all-zero syndromes across the whole
        // limb (the dominant case in Monte-Carlo traffic).
        if or_reduce_limb(gather).is_zero() {
            stats.clean_limbs += L::WORDS as u64;
            base += L::WORDS;
            continue;
        }

        let valid = if base + L::WORDS >= total_words {
            valid_words[total_words - 1 - base] = tail;
            let v = L::load(&valid_words);
            valid_words[total_words - 1 - base] = u64::MAX;
            v
        } else {
            L::load(&valid_words)
        };

        // Shared prefix AND-tree by successive halving: masks[v] = lanes
        // whose low `prefix_bits` syndrome bits equal v. Partitions `valid`.
        let mut masks = [L::ZERO; PREFIX_SLOTS];
        masks[0] = valid;
        for (t, &slice) in gather.iter().take(prefix_bits).enumerate() {
            let width = 1usize << t;
            for i in 0..width {
                let m = masks[i];
                masks[i | width] = m.and(slice);
                masks[i] = m.and(slice.not());
            }
        }
        let suffix = &gather[prefix_bits..];

        let clean = and_xnor_reduce_limb(masks[0], suffix, 0);
        let mut matched = L::ZERO;
        for &(b, start, end) in &program.buckets {
            let mut bucket_base = masks[b as usize];
            if b == 0 {
                bucket_base = bucket_base.and(clean.not());
            }
            if bucket_base.is_zero() {
                stats.buckets_skipped += 1;
                continue;
            }
            stats.buckets_visited += 1;
            for entry in &program.entries[start as usize..end as usize] {
                stats.entries_tested += 1;
                let m = and_xnor_reduce_limb(bucket_base, suffix, entry.pattern >> prefix_bits);
                if m.is_zero() {
                    continue;
                }
                matched = matched.or(m);
                bucket_base = bucket_base.and(m.not());
                let mut flip = entry.flip;
                while flip != 0 {
                    let p = flip.trailing_zeros() as usize;
                    m.xor_into(&mut out.codewords.lane_mut(p)[base..]);
                    flip &= flip - 1;
                }
                if bucket_base.is_zero() {
                    break;
                }
            }
        }
        matched.store(&mut out.corrected[base..]);
        let flagged = valid.and(clean.not()).and(matched.not());
        flagged.store(&mut out.flagged[base..]);
        stats.lanes_matched += u64::from(matched.count_ones());
        stats.lanes_flagged += u64::from(flagged.count_ones());
        base += L::WORDS;
    }
}

/// [`run_walk`] over the whole batch: full `L`-width chunks first, then the
/// ragged remainder (fewer than `L::WORDS` words) with the `u64` kernel —
/// both produce bit-identical words, so the seam is invisible.
pub(crate) fn run_walk_chunked<L: Limb>(
    program: &ColumnMatchProgram,
    syndromes: &BitSlice64,
    out: &mut BatchDecoded,
    stats: &mut KernelStats,
) {
    let total_words = syndromes.words();
    let full = total_words - total_words % L::WORDS;
    run_walk::<L>(program, syndromes, 0, full, out, stats);
    if full < total_words {
        run_walk::<u64>(program, syndromes, full, total_words, out, stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn w256_limb_ops_match_wordwise_reference() {
        let a = W256([0xDEAD_BEEF, !0, 0, 0x0123_4567_89AB_CDEF]);
        let b = W256([0xFFFF_0000, 0x5555_5555, !0, 0xFEDC_BA98_7654_3210]);
        for i in 0..4 {
            assert_eq!(a.and(b).0[i], a.0[i] & b.0[i]);
            assert_eq!(a.or(b).0[i], a.0[i] | b.0[i]);
            assert_eq!(a.xor(b).0[i], a.0[i] ^ b.0[i]);
            assert_eq!(a.not().0[i], !a.0[i]);
        }
        assert!(W256::ZERO.is_zero());
        assert!(!a.is_zero());
        assert_eq!(
            a.count_ones(),
            a.0.iter().map(|w| w.count_ones()).sum::<u32>()
        );
        let mut roundtrip = [0u64; 4];
        a.store(&mut roundtrip);
        assert_eq!(W256::load(&roundtrip), a);
        a.xor_into(&mut roundtrip);
        assert_eq!(roundtrip, [0; 4]);
    }
}
