//! The batched algebraic-syndrome kernel for multi-error (BCH) codes.
//!
//! The scalar-fallback engine re-derives each dirty lane's power syndromes
//! from scratch — unpack the word into a `BitVec`, multiply by `H`, walk
//! Chien search over all `n` positions. This kernel instead accumulates the
//! **bit-slices of the odd power syndromes across the whole limb** (one XOR
//! chain per GF(2^m) coefficient bit, shared by up to 64 lanes), then runs
//! the scalar algebra — Berlekamp–Massey plus the closed-form locator root
//! solve — per dirty lane with its syndromes supplied for free: no `BitVec`
//! is ever materialized, no matrix product performed, and even syndromes
//! come from the Frobenius square rather than the channel. Under the
//! all-dirty worst case every lane still shares the limb-wide accumulation,
//! which is what lifts the batched BCH floor.

use ecc::{AlgebraicAction, BatchDecoded, SlicedSyndromePlan};
use gf2::{or_reduce, BitSlice64};

/// Upper bound on `odd_count × field_bits` (the sliced accumulator array):
/// `m ≤ 8` and `t ≤ 16` comfortably cover every code the catalog admits.
const MAX_POWER_SLICES: usize = 128;

/// Upper bound on the per-lane power-syndrome vector (`2t`).
const MAX_SYNDROMES: usize = 32;

/// Per-call statistics of the sliced algebraic kernel, flushed to the
/// `batch.bch.*` counters once per decode call.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct SlicedStats {
    /// Limbs whose syndromes were all zero (short-circuited).
    pub clean_limbs: u64,
    /// Limbs that ran the sliced power-syndrome accumulation.
    pub sliced_limbs: u64,
    /// Lanes with a nonzero syndrome (each runs the per-lane algebra).
    pub dirty_lanes: u64,
    /// Dirty lanes corrected.
    pub corrected: u64,
    /// Dirty lanes flagged detected-uncorrectable.
    pub flagged: u64,
    /// Error-locator evaluations: with the closed-form root solve the
    /// decoder evaluates the locator only at its claimed roots, so this is
    /// the popcount of the applied flip masks (compare the Chien fallback's
    /// `n` evaluations per dirty word).
    pub locator_evals: u64,
}

/// Decodes one batch with the sliced-syndrome engine.
///
/// `out.codewords` must already hold a copy of the received batch; the
/// kernel reads each limb's lanes from it *before* applying that limb's
/// flips, so the accumulation always sees the received bits. `gather` is the
/// per-limb full-syndrome scratch (`redundancy` words).
///
/// `prefilter` is the weight-1 column screen: `prefilter[j]` is the full
/// syndrome of a single-bit error at position `j` (column `j` of `H`). Per
/// dirty limb, before any per-lane algebra, each column's pattern is matched
/// against the whole limb with an XNOR-AND chain over the syndrome slices
/// (early exit on the first zero), and matching lanes — exactly the
/// distance-1 cosets, the dominant dirty population in Monte-Carlo traffic —
/// are flipped and retired wholesale. Bit-exactness is unconditional: a
/// syndrome equal to column `j` means the received word is in the coset of
/// `e_j`, whose unique bounded-distance correction is "flip `j`" (the
/// engine's constructor probes every column against the scalar decoder).
/// Only *residual* lanes pay for power-syndrome accumulation and
/// Berlekamp–Massey; a limb with no residue skips accumulation entirely,
/// which is what lifts the all-dirty worst case.
pub(crate) fn run_sliced(
    plan: &SlicedSyndromePlan,
    prefilter: &[u128],
    action: &(dyn Fn(&[u16], u128) -> AlgebraicAction + Send + Sync),
    syndromes: &BitSlice64,
    gather: &mut [u64],
    out: &mut BatchDecoded,
    stats: &mut SlicedStats,
) {
    let words = syndromes.words();
    let tail = syndromes.tail_mask();
    let m = plan.field_bits;
    let odd_count = plan.odd_count();
    debug_assert!(odd_count * m <= MAX_POWER_SLICES);
    debug_assert!(plan.syndrome_count <= MAX_SYNDROMES);
    let mut power = [0u64; MAX_POWER_SLICES];
    let mut synd = [0u16; MAX_SYNDROMES];

    for w in 0..words {
        let valid = if w + 1 == words { tail } else { u64::MAX };
        syndromes.gather_word(w, gather);
        let dirty = or_reduce(gather) & valid;
        if dirty == 0 {
            stats.clean_limbs += 1;
            continue;
        }
        stats.dirty_lanes += u64::from(dirty.count_ones());

        // Weight-1 column prefilter: retire every lane whose full syndrome
        // equals a column of `H` without touching the per-lane algebra. One
        // locator evaluation per matched lane (the single applied flip bit),
        // identical to what Berlekamp–Massey + the closed-form solve would
        // have metered for the same lane.
        let mut residual = dirty;
        for (j, &pattern) in prefilter.iter().enumerate() {
            if residual == 0 {
                break;
            }
            let mut matched = residual;
            for (t, &slice) in gather.iter().enumerate() {
                matched &= if (pattern >> t) & 1 == 1 {
                    slice
                } else {
                    !slice
                };
                if matched == 0 {
                    break;
                }
            }
            if matched != 0 {
                out.codewords.lane_mut(j)[w] ^= matched;
                out.corrected[w] |= matched;
                let count = u64::from(matched.count_ones());
                stats.corrected += count;
                stats.locator_evals += count;
                residual &= !matched;
            }
        }
        if residual == 0 {
            continue;
        }
        stats.sliced_limbs += 1;

        // Bit-sliced accumulation: word `h·m + b` holds, in lane order, bit
        // `b` of odd power syndrome S_{2h+1} for all 64 lanes at once — one
        // XOR chain over the support positions, shared by the whole limb.
        for (h, supports) in plan.odd_supports.iter().enumerate() {
            for (b, &support) in supports.iter().enumerate() {
                let mut acc = 0u64;
                let mut rest = support;
                while rest != 0 {
                    let p = rest.trailing_zeros() as usize;
                    acc ^= out.codewords.lane(p)[w];
                    rest &= rest - 1;
                }
                power[h * m + b] = acc;
            }
        }

        // Per residual lane: read the odd syndromes out of the slices,
        // square up the even ones, and hand the algebra its inputs for free.
        // (Prefilter-corrected lanes changed only their own bit columns, so
        // the residual lanes' extracted syndromes still see received bits.)
        let mut rest = residual;
        while rest != 0 {
            let lane = rest.trailing_zeros();
            let bit = 1u64 << lane;
            rest &= rest - 1;

            let synd = &mut synd[..plan.syndrome_count];
            for h in 0..odd_count {
                let mut s = 0u16;
                for b in 0..m {
                    s |= (((power[h * m + b] >> lane) & 1) as u16) << b;
                }
                synd[2 * h] = s;
            }
            plan.fill_even_syndromes(synd);

            let mut full = 0u128;
            for (t, &slice) in gather.iter().enumerate() {
                full |= u128::from((slice >> lane) & 1) << t;
            }

            match action(synd, full) {
                AlgebraicAction::Detected => {
                    out.flagged[w] |= bit;
                    stats.flagged += 1;
                }
                AlgebraicAction::Flip(mask) => {
                    stats.locator_evals += u64::from(mask.count_ones());
                    let mut flip = mask;
                    while flip != 0 {
                        let p = flip.trailing_zeros() as usize;
                        out.codewords.lane_mut(p)[w] ^= bit;
                        flip &= flip - 1;
                    }
                    out.corrected[w] |= bit;
                    stats.corrected += 1;
                }
            }
        }
    }
}
