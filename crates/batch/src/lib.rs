//! # sfq-batch — bit-sliced batch codec engine
//!
//! Scalar encode/decode of the paper's short block codes spends its time in
//! per-message loops over 4–8 bits: one `BitVec` allocation and one
//! matrix-vector product per message. For the workloads this workspace cares
//! about — exhaustive Table I sweeps and Fig. 5 Monte-Carlo runs over
//! thousands of chips × hundreds of messages — the same operations can be
//! performed on 64 messages at once by storing the batch *transposed*
//! ([`gf2::BitSlice64`]): one `u64`-limb lane per bit position, message `i`
//! at bit `i % 64` of limb `i / 64`. Encoding a lane is then a handful of
//! XORs; the whole batch path touches no per-message state at all. The same
//! word-level parallelism powers the massively parallel syndrome processing
//! units of superconducting QEC decoders (QECOOL, NEO-QEC), applied here to
//! classical link codes.
//!
//! ## How decoding becomes branch-free
//!
//! [`BatchCodec`] is built from any scalar [`BlockCode`] + [`HardDecoder`]
//! whose hard decisions are **coset-invariant**: the correction applied to a
//! received word depends only on its syndrome. This holds for every decoder
//! in the `ecc` crate's `decode` path — syndrome decoders trivially, and the
//! RM(1,3) fast-Hadamard decoder because it *detects* spectral ties instead
//! of resolving them (the tie-break of `decode_best_effort` is not
//! coset-invariant and is deliberately not offered in batch form).
//!
//! Construction interrogates the scalar decoder once per syndrome value
//! (2^(n−k) representative words) and records either "flip this error
//! pattern" or "raise the error flag". Batch decoding then computes the
//! syndrome lanes and, for each syndrome value `s`, forms the match mask
//! `∧_t (s_t ? syn_t : ¬syn_t)` — the 64-message-wide indicator of "this
//! message has syndrome `s`" — and XORs the tabled error pattern into the
//! matching positions. Bit-exactness with the scalar path is enforced by the
//! workspace's exhaustive equivalence tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ecc::{
    generator_right_inverse, BatchDecode, BatchDecoded, BatchEncode, BlockCode, DecodeOutcome,
    Hamming74, Hamming84, HardDecoder, Repetition, Rm13, SecDed, Uncoded,
};
use gf2::{BitMat, BitSlice64, BitVec};

/// Largest supported redundancy `n - k`: the syndrome-action table has
/// `2^(n-k)` entries, so this caps it at one million.
pub const MAX_REDUNDANCY: usize = 20;

/// Largest supported codeword length: masks are single `u128`s, which covers
/// every catalog code up to and beyond SEC-DED(72,64).
pub const MAX_BLOCK_LENGTH: usize = 128;

/// What the scalar decoder does for one syndrome value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SyndromeAction {
    /// Error pattern to XOR into the received word (bit `p` = codeword
    /// position `p`). Zero for the zero syndrome.
    flip: u128,
    /// `true` when the decoder raises the error flag instead of correcting.
    detected: bool,
}

/// A bit-sliced batch encoder/decoder for one short block code.
///
/// Precomputes, from the scalar code:
///
/// * the generator's column supports (for lane encoding),
/// * the parity-check rows (for lane syndromes),
/// * the per-syndrome decoder action table (for lane decoding),
/// * the pivot/transform pair of [`generator_right_inverse`] (for lane
///   message extraction).
///
/// All masks are single `u128`s, so the code must satisfy `n ≤`
/// [`MAX_BLOCK_LENGTH`] and `n - k ≤` [`MAX_REDUNDANCY`] — comfortably true
/// for every code in this workspace, including the wide SEC-DED family.
#[derive(Debug, Clone)]
pub struct BatchCodec {
    name: String,
    n: usize,
    k: usize,
    /// `encode_masks[j]`: support of generator column `j` over message bits.
    encode_masks: Vec<u128>,
    /// `syndrome_masks[t]`: support of parity-check row `t` over codeword bits.
    syndrome_masks: Vec<u128>,
    /// Indexed by syndrome value (bit `t` = syndrome lane `t`).
    actions: Vec<SyndromeAction>,
    /// `extract_masks[j]`: support over codeword bits whose parity is message
    /// bit `j` (from the generator's right inverse).
    extract_masks: Vec<u128>,
}

impl BatchCodec {
    /// Builds the batch engine for a scalar code + hard decoder.
    ///
    /// # Panics
    /// Panics if the code exceeds the `n ≤ 128` / `n - k ≤ 20` limits, or if
    /// the parity-check matrix does not have full row rank.
    #[must_use]
    pub fn new<C: BlockCode + HardDecoder>(code: &C) -> Self {
        let (n, k) = (code.n(), code.k());
        assert!(
            n <= MAX_BLOCK_LENGTH,
            "batch codec supports n <= {MAX_BLOCK_LENGTH} (got {n})"
        );
        assert!(k <= n, "k must not exceed n");
        let redundancy = n - k;
        assert!(
            redundancy <= MAX_REDUNDANCY,
            "batch codec supports n - k <= {MAX_REDUNDANCY} (got {redundancy})"
        );

        let g = code.generator();
        let encode_masks: Vec<u128> = (0..n).map(|j| column_mask(g, j)).collect();

        let h = code.parity_check();
        let syndrome_masks: Vec<u128> = (0..redundancy).map(|t| row_mask(h, t)).collect();

        let actions = build_syndrome_actions(code);

        let (pivots, transform) = generator_right_inverse(g);
        let extract_masks: Vec<u128> = (0..k)
            .map(|j| {
                pivots
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| transform.get(i, j))
                    .fold(0u128, |mask, (_, &p)| mask | (1u128 << p))
            })
            .collect();

        BatchCodec {
            name: format!("batch[{}]", code.name()),
            n,
            k,
            encode_masks,
            syndrome_masks,
            actions,
            extract_masks,
        }
    }

    /// Batch engine for the Hamming(7,4) code.
    #[must_use]
    pub fn hamming74() -> Self {
        Self::new(&Hamming74::new())
    }

    /// Batch engine for the extended Hamming(8,4) code.
    #[must_use]
    pub fn hamming84() -> Self {
        Self::new(&Hamming84::new())
    }

    /// Batch engine for the RM(1,3) code (tie-detecting decoder).
    #[must_use]
    pub fn rm13() -> Self {
        Self::new(&Rm13::new())
    }

    /// Batch engine for a repetition code.
    #[must_use]
    pub fn repetition(k: usize, factor: usize) -> Self {
        Self::new(&Repetition::new(k, factor))
    }

    /// Batch engine for uncoded transmission.
    #[must_use]
    pub fn uncoded(k: usize) -> Self {
        Self::new(&Uncoded::new(k))
    }

    /// Batch engine for the SEC-DED family member with `2^m` data bits
    /// (`m = 6` is the wide (72,64) code).
    #[must_use]
    pub fn sec_ded(m: usize) -> Self {
        Self::new(&SecDed::new(m))
    }

    /// Human-readable name, derived from the scalar code's.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// XORs, for each batch position whose syndrome matches, the tabled error
    /// pattern into `flips`, and accumulates the flag/correction masks.
    fn apply_syndrome_table(
        &self,
        syndromes: &BitSlice64,
        flips: &mut BitSlice64,
        flagged: &mut [u64],
        corrected: &mut [u64],
    ) {
        let redundancy = self.syndrome_masks.len();
        let words = syndromes.words();
        let tail = syndromes.tail_mask();
        let mut lanes = vec![0u64; redundancy];
        for w in 0..words {
            let valid = if w + 1 == words { tail } else { u64::MAX };
            for (t, lane) in lanes.iter_mut().enumerate() {
                *lane = syndromes.lane(t)[w];
            }
            for (s, action) in self.actions.iter().enumerate() {
                if action.flip == 0 && !action.detected {
                    continue; // zero syndrome: nothing to do
                }
                let mut mask = valid;
                for (t, &lane) in lanes.iter().enumerate() {
                    mask &= if (s >> t) & 1 == 1 { lane } else { !lane };
                    if mask == 0 {
                        break;
                    }
                }
                if mask == 0 {
                    continue;
                }
                if action.detected {
                    flagged[w] |= mask;
                } else {
                    corrected[w] |= mask;
                    let mut flip = action.flip;
                    while flip != 0 {
                        let p = flip.trailing_zeros() as usize;
                        flips.lane_mut(p)[w] |= mask;
                        flip &= flip - 1;
                    }
                }
            }
        }
    }
}

impl BatchEncode for BatchCodec {
    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn encode_batch(&self, messages: &BitSlice64) -> BitSlice64 {
        assert_eq!(messages.bits(), self.k, "message lanes must equal k");
        let mut out = BitSlice64::zeros(self.n, messages.batch());
        for (j, &mask) in self.encode_masks.iter().enumerate() {
            let mut m = mask;
            while m != 0 {
                let i = m.trailing_zeros() as usize;
                out.xor_lane_from(j, messages, i);
                m &= m - 1;
            }
        }
        out
    }
}

impl BatchDecode for BatchCodec {
    fn syndrome_batch(&self, received: &BitSlice64) -> BitSlice64 {
        assert_eq!(received.bits(), self.n, "received lanes must equal n");
        let mut out = BitSlice64::zeros(self.syndrome_masks.len(), received.batch());
        for (t, &mask) in self.syndrome_masks.iter().enumerate() {
            let mut m = mask;
            while m != 0 {
                let p = m.trailing_zeros() as usize;
                out.xor_lane_from(t, received, p);
                m &= m - 1;
            }
        }
        out
    }

    fn decode_batch(&self, received: &BitSlice64) -> BatchDecoded {
        assert_eq!(received.bits(), self.n, "received lanes must equal n");
        let words = received.words();
        let syndromes = self.syndrome_batch(received);

        let mut flips = BitSlice64::zeros(self.n, received.batch());
        let mut flagged = vec![0u64; words];
        let mut corrected = vec![0u64; words];
        self.apply_syndrome_table(&syndromes, &mut flips, &mut flagged, &mut corrected);

        // Corrected codewords: received ^ flips (flips are zero at flagged
        // positions, so flagged words pass through unchanged).
        let mut codewords = received.clone();
        for p in 0..self.n {
            codewords.xor_lane_from(p, &flips, p);
        }

        // Message lanes: parity of the extraction support over the corrected
        // codeword lanes, masked out at flagged positions.
        let mut messages = BitSlice64::zeros(self.k, received.batch());
        for (j, &mask) in self.extract_masks.iter().enumerate() {
            let mut m = mask;
            while m != 0 {
                let p = m.trailing_zeros() as usize;
                messages.xor_lane_from(j, &codewords, p);
                m &= m - 1;
            }
            let lane = messages.lane_mut(j);
            for (l, &f) in lane.iter_mut().zip(flagged.iter()) {
                *l &= !f;
            }
        }

        BatchDecoded {
            messages,
            codewords,
            flagged,
            corrected,
        }
    }
}

/// Support of generator column `j` as a mask over message-bit indices.
fn column_mask(g: &BitMat, j: usize) -> u128 {
    (0..g.rows()).fold(0u128, |mask, i| {
        if g.get(i, j) {
            mask | (1u128 << i)
        } else {
            mask
        }
    })
}

/// Support of parity-check row `t` as a mask over codeword positions.
fn row_mask(h: &BitMat, t: usize) -> u128 {
    (0..h.cols()).fold(0u128, |mask, p| {
        if h.get(t, p) {
            mask | (1u128 << p)
        } else {
            mask
        }
    })
}

/// Interrogates the scalar decoder once per syndrome value and tabulates its
/// action.
///
/// For each syndrome `s`, a representative received word with that syndrome
/// is constructed from the row-reduced parity-check matrix: row-reducing
/// `[H | I_{n-k}]` gives `[R | T]` with `R = T·H` and pivot columns `p_i`;
/// the word `r = Σ_i (T·s)_i · e_{p_i}` satisfies `H·r = s`. The decoder's
/// response to `r` — flip pattern or error flag — is recorded as the action
/// for every word in that coset.
fn build_syndrome_actions<C: BlockCode + HardDecoder>(code: &C) -> Vec<SyndromeAction> {
    let n = code.n();
    let redundancy = n - code.k();
    let table_len = 1usize << redundancy;
    if redundancy == 0 {
        // No parity: every word is a codeword, nothing to correct or detect.
        return vec![SyndromeAction {
            flip: 0,
            detected: false,
        }];
    }

    let h = code.parity_check();
    let augmented = h.hconcat(&BitMat::identity(redundancy));
    let (reduced, pivots) = augmented.rref();
    assert_eq!(pivots.len(), redundancy, "H must have full row rank");
    assert!(
        pivots.iter().all(|&p| p < n),
        "H pivots must be data columns"
    );

    (0..table_len as u64)
        .map(|s| {
            let syndrome = BitVec::from_u64(redundancy, s);
            // a = T · s, then r = Σ a_i e_{p_i}.
            let mut representative = BitVec::zeros(n);
            for (i, &p) in pivots.iter().enumerate() {
                let t_row: BitVec = (0..redundancy).map(|t| reduced.get(i, n + t)).collect();
                if t_row.dot(&syndrome) {
                    representative.set(p, true);
                }
            }
            debug_assert_eq!(code.syndrome(&representative), syndrome);

            let decoded = code.decode(&representative);
            match decoded.outcome {
                DecodeOutcome::DetectedUncorrectable => SyndromeAction {
                    flip: 0,
                    detected: true,
                },
                _ => {
                    let codeword = decoded
                        .codeword
                        .expect("non-detected decode must produce a codeword");
                    let flip = (&representative ^ &codeword).to_u128();
                    SyndromeAction {
                        flip,
                        detected: false,
                    }
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_messages(k: usize, batch: usize, seed: u64) -> Vec<BitVec> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..batch)
            .map(|_| BitVec::from_u64(k, rng.random_range(0..(1u64 << k))))
            .collect()
    }

    #[test]
    fn encode_batch_matches_scalar_for_all_paper_codes() {
        type ScalarEncode = Box<dyn Fn(&BitVec) -> BitVec>;
        let cases: Vec<(BatchCodec, ScalarEncode)> = vec![
            (BatchCodec::hamming74(), {
                let c = Hamming74::new();
                Box::new(move |m| c.encode(m))
            }),
            (BatchCodec::hamming84(), {
                let c = Hamming84::new();
                Box::new(move |m| c.encode(m))
            }),
            (BatchCodec::rm13(), {
                let c = Rm13::new();
                Box::new(move |m| c.encode(m))
            }),
            (BatchCodec::repetition(4, 2), {
                let c = Repetition::new(4, 2);
                Box::new(move |m| c.encode(m))
            }),
            (BatchCodec::uncoded(4), {
                let c = Uncoded::new(4);
                Box::new(move |m| c.encode(m))
            }),
        ];
        for (codec, scalar) in cases {
            let messages = random_messages(codec.k(), 130, 7);
            let batch = BitSlice64::pack(&messages);
            let encoded = codec.encode_batch(&batch).unpack();
            for (m, cw) in messages.iter().zip(&encoded) {
                assert_eq!(cw, &scalar(m), "{}", codec.name());
            }
        }
    }

    #[test]
    fn syndrome_batch_matches_scalar() {
        let code = Hamming84::new();
        let codec = BatchCodec::hamming84();
        let mut rng = StdRng::seed_from_u64(11);
        let words: Vec<BitVec> = (0..100)
            .map(|_| BitVec::from_u64(8, rng.random_range(0..256)))
            .collect();
        let batch = BitSlice64::pack(&words);
        let syndromes = codec.syndrome_batch(&batch);
        for (i, w) in words.iter().enumerate() {
            assert_eq!(syndromes.extract(i), code.syndrome(w), "word {i}");
        }
    }

    #[test]
    fn decode_batch_roundtrips_clean_codewords() {
        let codec = BatchCodec::hamming84();
        let messages = random_messages(4, 96, 3);
        let batch = BitSlice64::pack(&messages);
        let decoded = codec.decode_batch(&codec.encode_batch(&batch));
        assert_eq!(decoded.flagged_count(), 0);
        assert_eq!(decoded.corrected_count(), 0);
        assert_eq!(decoded.messages.unpack(), messages);
    }

    #[test]
    fn decode_batch_corrects_single_errors_and_flags_doubles() {
        let codec = BatchCodec::hamming84();
        let messages = random_messages(4, 64, 9);
        let clean = codec.encode_batch(&BitSlice64::pack(&messages));
        // Message i gets a 1-bit error at position i % 8; messages 5 and 6
        // additionally get a second error (-> double, must be flagged).
        let mut received = clean.clone();
        for i in 0..64 {
            received.set(i, i % 8, !received.get(i, i % 8));
        }
        for &i in &[5usize, 6] {
            let pos = (i + 1) % 8;
            received.set(i, pos, !received.get(i, pos));
        }
        let decoded = codec.decode_batch(&received);
        for (i, message) in messages.iter().enumerate() {
            if i == 5 || i == 6 {
                assert!(decoded.is_flagged(i), "message {i} must be flagged");
            } else {
                assert!(!decoded.is_flagged(i));
                assert!(decoded.is_corrected(i));
                assert_eq!(decoded.messages.extract(i), *message, "message {i}");
            }
        }
        assert_eq!(decoded.flagged_count(), 2);
    }

    #[test]
    fn uncoded_codec_passes_everything_through() {
        let codec = BatchCodec::uncoded(4);
        let messages = random_messages(4, 70, 21);
        let batch = BitSlice64::pack(&messages);
        let encoded = codec.encode_batch(&batch);
        assert_eq!(encoded.unpack(), messages);
        let decoded = codec.decode_batch(&encoded);
        assert_eq!(decoded.flagged_count(), 0);
        assert_eq!(decoded.messages.unpack(), messages);
    }

    #[test]
    fn repetition_decode_matches_majority_vote() {
        let scalar = Repetition::new(2, 3);
        let codec = BatchCodec::repetition(2, 3);
        // All 64 possible received words of the (6,2) code.
        let words: Vec<BitVec> = (0u64..64).map(|w| BitVec::from_u64(6, w)).collect();
        let decoded = codec.decode_batch(&BitSlice64::pack(&words));
        for (i, w) in words.iter().enumerate() {
            let reference = scalar.decode(w);
            match reference.outcome {
                DecodeOutcome::DetectedUncorrectable => assert!(decoded.is_flagged(i)),
                _ => {
                    assert!(!decoded.is_flagged(i));
                    assert_eq!(Some(decoded.messages.extract(i)), reference.message);
                }
            }
        }
    }

    #[test]
    fn partial_last_limb_batches_are_handled() {
        let codec = BatchCodec::hamming74();
        for batch_size in [1usize, 63, 65, 127] {
            let messages = random_messages(4, batch_size, batch_size as u64);
            let clean = codec.encode_batch(&BitSlice64::pack(&messages));
            let mut received = clean.clone();
            if batch_size > 2 {
                received.set(batch_size - 1, 3, !received.get(batch_size - 1, 3));
            }
            let decoded = codec.decode_batch(&received);
            assert_eq!(decoded.messages.unpack().len(), batch_size);
            for (i, m) in messages.iter().enumerate() {
                assert_eq!(
                    decoded.messages.extract(i),
                    *m,
                    "batch {batch_size} msg {i}"
                );
            }
        }
    }

    #[test]
    fn codec_reports_code_parameters() {
        let codec = BatchCodec::hamming84();
        assert_eq!((codec.n(), codec.k()), (8, 4));
        assert!(codec.name().contains("Hamming(8,4)"));
    }

    #[test]
    fn secded_72_64_batch_corrects_singles_and_flags_doubles() {
        // The widest catalog member: 72 lanes (beyond one u64 mask), 8-bit
        // syndrome table. Messages are 64-bit, drawn from a seeded RNG.
        let codec = BatchCodec::sec_ded(6);
        assert_eq!((codec.n(), codec.k()), (72, 64));
        let mut rng = StdRng::seed_from_u64(0x7264);
        let messages: Vec<BitVec> = (0..130)
            .map(|_| BitVec::from_u64(64, rng.random::<u64>()))
            .collect();
        let clean = codec.encode_batch(&BitSlice64::pack(&messages));

        // Clean round trip.
        let decoded = codec.decode_batch(&clean);
        assert_eq!(decoded.flagged_count(), 0);
        assert_eq!(decoded.messages.unpack(), messages);

        // One error per word: corrected. Words 10 and 100 get a second
        // error: flagged.
        let mut received = clean.clone();
        for i in 0..130 {
            let pos = rng.random_range(0..72usize);
            received.set(i, pos, !received.get(i, pos));
            if i == 10 || i == 100 {
                let second = (pos + 1 + rng.random_range(0..70usize)) % 72;
                received.set(i, second, !received.get(i, second));
            }
        }
        let decoded = codec.decode_batch(&received);
        for (i, message) in messages.iter().enumerate() {
            if i == 10 || i == 100 {
                assert!(decoded.is_flagged(i), "word {i} must be flagged");
            } else {
                assert!(decoded.is_corrected(i), "word {i}");
                assert_eq!(decoded.messages.extract(i), *message, "word {i}");
            }
        }
        assert_eq!(decoded.flagged_count(), 2);
    }

    #[test]
    fn secded_batch_matches_scalar_for_whole_family() {
        for m in 3..=6 {
            let scalar = SecDed::new(m);
            let codec = BatchCodec::sec_ded(m);
            let mut rng = StdRng::seed_from_u64(m as u64);
            let k = scalar.k();
            let messages: Vec<BitVec> = (0..64)
                .map(|_| {
                    (0..k)
                        .map(|_| rng.random::<u64>() & 1 == 1)
                        .collect::<BitVec>()
                })
                .collect();
            let encoded = codec.encode_batch(&BitSlice64::pack(&messages));
            for (i, msg) in messages.iter().enumerate() {
                assert_eq!(encoded.extract(i), scalar.encode(msg), "m={m} word {i}");
            }
        }
    }

    #[test]
    fn shortened_hamming_3832_works_in_batch_form() {
        // Exercises the 6-bit-redundancy table and 38-bit lanes.
        let scalar = ecc::ShortenedHamming3832::new();
        let codec = BatchCodec::new(&scalar);
        let mut rng = StdRng::seed_from_u64(5);
        let messages: Vec<BitVec> = (0..64)
            .map(|_| BitVec::from_u64(32, rng.random::<u64>() & 0xFFFF_FFFF))
            .collect();
        let clean = codec.encode_batch(&BitSlice64::pack(&messages));
        let mut received = clean.clone();
        for i in 0..64 {
            let pos = rng.random_range(0..38usize);
            received.set(i, pos, !received.get(i, pos));
        }
        let decoded = codec.decode_batch(&received);
        for (i, m) in messages.iter().enumerate() {
            assert!(!decoded.is_flagged(i));
            assert_eq!(decoded.messages.extract(i), *m, "msg {i}");
        }
    }
}
