//! # sfq-batch — bit-sliced batch codec engine
//!
//! Scalar encode/decode of the paper's short block codes spends its time in
//! per-message loops over 4–8 bits: one `BitVec` allocation and one
//! matrix-vector product per message. For the workloads this workspace cares
//! about — exhaustive Table I sweeps and Fig. 5 Monte-Carlo runs over
//! thousands of chips × hundreds of messages — the same operations can be
//! performed on 64 messages at once by storing the batch *transposed*
//! ([`gf2::BitSlice64`]): one `u64`-limb lane per bit position, message `i`
//! at bit `i % 64` of limb `i / 64`. Encoding a lane is then a handful of
//! XORs; the whole batch path touches no per-message state at all. The same
//! word-level parallelism powers the massively parallel syndrome processing
//! units of superconducting QEC decoders (QECOOL, NEO-QEC), applied here to
//! classical link codes.
//!
//! ## How decoding becomes branch-free: column matching
//!
//! [`BatchCodec`] is built from any scalar [`BlockCode`] + [`HardDecoder`]
//! whose hard decisions are **coset-invariant**: the correction applied to a
//! received word depends only on its syndrome. Construction compiles the
//! decoder into a [`ColumnMatchProgram`]: a list of `(syndrome pattern,
//! flip mask)` entries covering exactly the *correctable* syndromes. Batch
//! decoding computes the `r = n − k` syndrome bit-slices, and per 64-message
//! limb:
//!
//! * a limb whose syndromes are all zero (the dominant case in Monte-Carlo
//!   traffic) skips matching entirely;
//! * the `2^min(4,r)` syndrome-*prefix* masks are built once per limb (one
//!   shared AND-tree by successive halving, partitioning the lanes), and
//!   the all-zero prefix mask yields the clean-word mask;
//! * each entry starts from its prefix bucket's mask and matches only its
//!   remaining high bits — an XNOR-AND-tree over the suffix slices
//!   ([`gf2::and_xnor_reduce`]) — then XORs its flip mask into the matching
//!   positions; matched lanes retire, and buckets with no lanes in play
//!   skip all of their entries;
//! * everything that is neither clean nor matched raises the error flag —
//!   detected-uncorrectable syndromes are handled *by complement* and cost
//!   nothing.
//!
//! How the program is built depends on the scalar decoder's declared
//! [`SyndromeClass`]:
//!
//! * [`SyndromeClass::ColumnFlip`] decoders (every Hamming/SEC-DED-style
//!   decoder in `ecc`, and the tie-detecting RM(1,3) decoder) are compiled
//!   **directly from the columns of `H`** — one entry per codeword position,
//!   verified with one scalar probe per position. Construction is `O(n · r)`
//!   and per-limb decode is `O(n · r)` bit-ops, independent of `2^r`, which
//!   is what lets the engine serve codes with redundancy far beyond the old
//!   20-bit action-table limit (e.g. the catalog's Shortened Hamming(85,64)
//!   with `r = 21`).
//! * [`SyndromeClass::General`] decoders (e.g. majority-vote repetition) are
//!   interrogated once per syndrome value, exactly like the old
//!   syndrome-action table — still exact, but only tractable for small `r`.
//! * [`SyndromeClass::Algebraic`] decoders (multi-error BCH) have far too
//!   many correctable syndromes to tabulate (`Σ C(n,i)` for `i ≤ t`).
//!   [`BatchCodec::with_sliced_algebraic`] keeps the bit-sliced syndrome
//!   screen and the clean-limb short-circuit, **accumulates the odd power
//!   syndromes bit-sliced across each dirty limb** (even powers follow from
//!   the Frobenius square), and runs only the scalar algebra — Berlekamp–
//!   Massey plus a closed-form locator root solve — per dirty lane, with its
//!   syndromes supplied for free. [`BatchCodec::with_scalar_fallback`]
//!   remains as the slow reference engine (unpack each dirty lane, run the
//!   whole scalar decoder). Work is metered by the `batch.bch.*` counters.
//!
//! ## Decode kernels and runtime dispatch
//!
//! One compiled program can be executed by several interchangeable kernels
//! (see the crate's `kernel` module): the prefix-bucket walk at `u64`,
//! `u128`, or 256-bit software-SIMD width, and — for codes whose whole
//! syndrome fits one byte (`r ≤ 8`, i.e. every [`SyndromeClass::ColumnFlip`]
//! / [`SyndromeClass::General`] code up to SEC-DED(72,64)) — *direct
//! dispatch*: a flat 256-entry syndrome→action table indexed per lane, with
//! dense limbs bit-transposed into per-lane syndrome bytes
//! ([`gf2::syndrome_bytes`]). Dispatch picks the widest profitable kernel at
//! run time ([`KernelKind::Auto`]); the `SFQ_BATCH_KERNEL` environment
//! variable or [`BatchCodec::with_kernel`] pins one, and the workspace's
//! forced-dispatch equivalence suite proves every kernel bit-identical to
//! the scalar walk. Selection and per-kernel volume are observable via the
//! `batch.kernel.*` counters.
//!
//! Bit-exactness with the scalar path is enforced by the workspace's
//! exhaustive equivalence tests, and the RM(1,3) tie-break policy note
//! applies unchanged: the batch engine tabulates the tie-*detecting*
//! decoder (`decode`), not `decode_best_effort`.
//!
//! ## Allocation-free hot path
//!
//! Every batch operation has a buffer-reusing twin ([`BatchEncode::
//! encode_batch_into`], [`BatchDecode::decode_batch_with`]) threaded through
//! an [`ecc::BatchScratch`]; the Monte-Carlo drivers in `cryolink` keep one
//! scratch per worker thread so the steady-state inner loop never touches
//! the allocator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ecc::{
    generator_right_inverse, AlgebraicAction, AlgebraicDecode, BatchDecode, BatchDecoded,
    BatchEncode, BatchScratch, Bch, BchSpec, BitFlipPlan, BlockCode, DecodeOutcome, Decoded,
    Hamming74, Hamming84, HardDecoder, IterativeDecode, Ldpc, Repetition, Rm13, SecDed,
    ShortenedHamming, SlicedSyndromePlan, SyndromeClass, Uncoded,
};
use gf2::{or_reduce, BitMat, BitSlice64, BitVec};
use std::sync::Arc;

mod kernel;

pub use kernel::{KernelEnvError, KernelKind};

use kernel::bitflip::{run_bit_flip, BitFlipStats};
use kernel::direct::DirectTable;
use kernel::sliced::{run_sliced, SlicedStats};
use kernel::wide::{run_walk_chunked, W256};
use kernel::{KernelChoice, KernelStats};

/// Largest supported codeword length: syndrome patterns, column supports,
/// and flip masks are single `u128`s. This is the batch engine's only size
/// limit — the redundancy `n - k` is unconstrained.
pub const MAX_BLOCK_LENGTH: usize = 128;

/// One compiled decode rule: when a word's syndrome equals `pattern`, XOR
/// `flip` into it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MatchEntry {
    /// Syndrome value (bit `t` = syndrome lane `t`). Never zero — the zero
    /// syndrome always means "accept" and is handled separately.
    pattern: u128,
    /// Error pattern to XOR into the received word (bit `p` = codeword
    /// position `p`). Never zero — a nonzero syndrome's correction flips at
    /// least one bit.
    flip: u128,
}

/// The compiled decoder: match entries for every *correctable* syndrome.
/// The zero syndrome accepts, and any other unmatched syndrome is
/// detected-uncorrectable by complement.
///
/// Entries are bucketed by the low [`ColumnMatchProgram::prefix_bits`] bits
/// of their pattern. The decode kernel builds all `2^prefix_bits`
/// prefix-match masks of a limb once (a shared AND-tree instead of
/// per-entry re-computation), then each entry only matches its bucket's
/// remaining high bits — and whole buckets with no matching lanes are
/// skipped without touching their entries, which is the common case for
/// sparse-error Monte-Carlo traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ColumnMatchProgram {
    /// Number of low syndrome bits used as the bucket index
    /// (`min(4, n - k)`, so the kernel's mask table fits a fixed array).
    prefix_bits: usize,
    /// Entries sorted by the low `prefix_bits` of their pattern.
    entries: Vec<MatchEntry>,
    /// `(prefix value, start, end)` ranges into `entries` — **non-empty
    /// buckets only**, so the kernel never branches over prefix values no
    /// entry uses.
    buckets: Vec<(u8, u32, u32)>,
    /// The flat syndrome→action table, compiled whenever the decoder's
    /// class is direct-dispatch eligible (`r ≤ 8`); its presence is what
    /// makes auto-dispatch pick the `direct4`/`direct8` kernels.
    direct: Option<DirectTable>,
}

/// Upper bound of the per-limb prefix-mask table (`2^4`).
const PREFIX_SLOTS: usize = 16;

/// The scalar-fallback decode engine for [`SyndromeClass::Algebraic`]
/// decoders: limbs are screened with the bit-sliced syndrome OR-reduce, and
/// only *dirty* lanes are unpacked and handed to the owned scalar decoder.
#[derive(Clone)]
struct AlgebraicFallback {
    /// The owned scalar decoder, type-erased.
    decode: Arc<dyn Fn(&BitVec) -> Decoded + Send + Sync>,
    /// Locator evaluations one scalar decode of a dirty word performs
    /// (e.g. `n` Chien-search points for BCH); used for work metering only.
    locator_evals_per_word: u64,
    /// `batch.bch.*` telemetry handles.
    metrics: AlgebraicMetrics,
}

impl std::fmt::Debug for AlgebraicFallback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlgebraicFallback")
            .field("locator_evals_per_word", &self.locator_evals_per_word)
            .finish_non_exhaustive()
    }
}

/// The type-erased per-lane algebra of a [`SlicedAlgebraic`] engine:
/// `(power syndromes, full syndrome) → action`.
type AlgebraicActionFn = Arc<dyn Fn(&[u16], u128) -> AlgebraicAction + Send + Sync>;

/// The sliced-syndrome decode engine for [`SyndromeClass::Algebraic`]
/// decoders: odd power syndromes are accumulated bit-sliced across each
/// dirty limb, and the per-lane algebra runs from those syndromes alone —
/// no `BitVec` is ever materialized.
#[derive(Clone)]
struct SlicedAlgebraic {
    /// The code's constant accumulation plan (supports, squaring table).
    plan: SlicedSyndromePlan,
    /// The weight-1 column prefilter: `col_syndromes[j]` is the full
    /// syndrome of a single-bit error at position `j`. Dirty lanes matching
    /// a column are flipped and retired whole-limb before any per-lane
    /// algebra runs; each column is probed against the scalar decoder at
    /// construction, so the shortcut is provably bit-identical.
    col_syndromes: Vec<u128>,
    /// The per-lane algebra.
    action: AlgebraicActionFn,
    /// `batch.bch.*` telemetry handles.
    metrics: AlgebraicMetrics,
}

impl std::fmt::Debug for SlicedAlgebraic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlicedAlgebraic")
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

/// The whole-limb bit-flipping engine for [`SyndromeClass::Iterative`]
/// decoders: each synchronous round is one XOR reduction per low-density
/// check plus one 3-input majority per variable, shared by 64 lanes — no
/// per-lane work at all, even on all-dirty limbs.
#[derive(Debug, Clone)]
struct BitFlipEngine {
    /// The code's constant synchronous schedule.
    plan: BitFlipPlan,
    /// `batch.ldpc.*` telemetry handles.
    metrics: BitFlipMetrics,
}

/// How a [`BatchCodec`] turns syndromes into corrections.
#[derive(Debug, Clone)]
enum DecodeEngine {
    /// The compiled column-matching program (`ColumnFlip` / `General`).
    ColumnMatch(ColumnMatchProgram),
    /// Bit-sliced power-syndrome accumulation + per-lane algebra
    /// (`Algebraic`, the default engine for BCH).
    SlicedAlgebraic(SlicedAlgebraic),
    /// Bit-sliced syndrome screen + scalar decode of dirty lanes
    /// (`Algebraic`, reference engine).
    ScalarFallback(AlgebraicFallback),
    /// Whole-limb synchronous bit flipping (`Iterative`, the engine for
    /// LDPC).
    BitFlip(BitFlipEngine),
}

/// Telemetry handles of the algebraic fallback path, registered under the
/// `batch.bch.*` names (see `docs/OBSERVABILITY.md`). Like
/// [`DecodeMetrics`], the kernel accumulates into locals and flushes once
/// per decode call.
#[derive(Debug, Clone)]
struct AlgebraicMetrics {
    /// Lanes whose syndrome was nonzero (each runs the per-lane algebra or
    /// one scalar decode).
    dirty_lanes: sfq_telemetry::Counter,
    /// Dirty lanes the decoder corrected.
    fallback_corrected: sfq_telemetry::Counter,
    /// Dirty lanes the decoder flagged detected-uncorrectable.
    fallback_flagged: sfq_telemetry::Counter,
    /// Error-locator evaluations performed (Chien-search points for the
    /// scalar fallback; applied flip bits for the closed-form solve).
    locator_evals: sfq_telemetry::Counter,
    /// Limbs that ran the bit-sliced power-syndrome accumulation (sliced
    /// engine only; stays zero under the scalar fallback).
    sliced_syndrome_limbs: sfq_telemetry::Counter,
    /// `batch.kernel.selected.<engine>` — decode calls served.
    kernel_selected: sfq_telemetry::Counter,
    /// `batch.kernel.<engine>.limbs` — limbs processed.
    kernel_limbs: sfq_telemetry::Counter,
}

impl AlgebraicMetrics {
    fn new(engine: &str) -> Self {
        let registry = sfq_telemetry::global();
        AlgebraicMetrics {
            dirty_lanes: registry.counter("batch.bch.dirty_lanes"),
            fallback_corrected: registry.counter("batch.bch.fallback_corrected"),
            fallback_flagged: registry.counter("batch.bch.fallback_flagged"),
            locator_evals: registry.counter("batch.bch.locator_evals"),
            sliced_syndrome_limbs: registry.counter("batch.bch.sliced_syndrome_limbs"),
            kernel_selected: registry.counter(&format!("batch.kernel.selected.{engine}")),
            kernel_limbs: registry.counter(&format!("batch.kernel.{engine}.limbs")),
        }
    }
}

/// Telemetry handles of the bit-flipping engine, registered under the
/// `batch.ldpc.*` names (see `docs/OBSERVABILITY.md`). Accumulated in
/// locals and flushed once per decode call, like every other engine.
#[derive(Debug, Clone)]
struct BitFlipMetrics {
    /// Lanes whose syndrome was nonzero.
    dirty_lanes: sfq_telemetry::Counter,
    /// Dirty lanes whose checks all cleared (corrected).
    corrected: sfq_telemetry::Counter,
    /// Dirty lanes still unsatisfied at the iteration cap (flagged).
    flagged: sfq_telemetry::Counter,
    /// Synchronous flip rounds executed (whole-limb each).
    rounds: sfq_telemetry::Counter,
    /// Variable flips applied (lane-bits across all rounds).
    flips: sfq_telemetry::Counter,
    /// Limbs that ran at least one flip round (clean limbs short-circuit).
    flip_limbs: sfq_telemetry::Counter,
    /// `batch.kernel.selected.bit-flip` — decode calls served.
    kernel_selected: sfq_telemetry::Counter,
    /// `batch.kernel.bit-flip.limbs` — limbs processed.
    kernel_limbs: sfq_telemetry::Counter,
}

impl BitFlipMetrics {
    fn new() -> Self {
        let registry = sfq_telemetry::global();
        BitFlipMetrics {
            dirty_lanes: registry.counter("batch.ldpc.dirty_lanes"),
            corrected: registry.counter("batch.ldpc.corrected"),
            flagged: registry.counter("batch.ldpc.flagged"),
            rounds: registry.counter("batch.ldpc.rounds"),
            flips: registry.counter("batch.ldpc.flips"),
            flip_limbs: registry.counter("batch.ldpc.flip_limbs"),
            kernel_selected: registry.counter("batch.kernel.selected.bit-flip"),
            kernel_limbs: registry.counter("batch.kernel.bit-flip.limbs"),
        }
    }
}

/// Decode-kernel telemetry handles, registered once per codec under the
/// `batch.decode.*` names (each codec is a shard of the global registry;
/// see `docs/OBSERVABILITY.md`). The kernel accumulates into plain locals
/// and flushes once per [`BatchCodec::decode_batch_with`] call, so the
/// per-limb loop sees no atomics. With the `telemetry` feature off these
/// handles are zero-sized no-ops.
#[derive(Debug, Clone)]
struct DecodeMetrics {
    /// Decode calls (one per batch).
    calls: sfq_telemetry::Counter,
    /// 64-lane limbs processed.
    limbs: sfq_telemetry::Counter,
    /// Limbs whose syndromes were all zero (short-circuited past matching).
    clean_limbs: sfq_telemetry::Counter,
    /// Prefix buckets entered with at least one lane in play.
    buckets_visited: sfq_telemetry::Counter,
    /// Prefix buckets skipped because no lane carried their prefix.
    buckets_skipped: sfq_telemetry::Counter,
    /// Match entries tested against a limb.
    entries_tested: sfq_telemetry::Counter,
    /// Lanes corrected (retired by a match).
    lanes_matched: sfq_telemetry::Counter,
    /// Lanes flagged detected-uncorrectable.
    lanes_flagged: sfq_telemetry::Counter,
    /// `batch.kernel.selected.<name>`, indexed by [`KernelChoice::index`] —
    /// decode calls each kernel served.
    kernel_selected: Vec<sfq_telemetry::Counter>,
    /// `batch.kernel.<name>.limbs`, indexed by [`KernelChoice::index`] —
    /// limbs each kernel processed.
    kernel_limbs: Vec<sfq_telemetry::Counter>,
    /// Detection-only calls (one per [`BatchCodec::detect_batch_with`]).
    detect_calls: sfq_telemetry::Counter,
    /// Limbs screened by detection-only calls.
    detect_limbs: sfq_telemetry::Counter,
    /// Dirty (nonzero-syndrome) lanes found by detection-only calls.
    detect_dirty_lanes: sfq_telemetry::Counter,
}

impl DecodeMetrics {
    fn new() -> Self {
        let registry = sfq_telemetry::global();
        DecodeMetrics {
            calls: registry.counter("batch.decode.calls"),
            limbs: registry.counter("batch.decode.limbs"),
            clean_limbs: registry.counter("batch.decode.clean_limbs"),
            buckets_visited: registry.counter("batch.decode.buckets_visited"),
            buckets_skipped: registry.counter("batch.decode.buckets_skipped"),
            entries_tested: registry.counter("batch.decode.entries_tested"),
            lanes_matched: registry.counter("batch.decode.lanes_matched"),
            lanes_flagged: registry.counter("batch.decode.lanes_flagged"),
            kernel_selected: KernelChoice::ALL
                .iter()
                .map(|c| registry.counter(&format!("batch.kernel.selected.{}", c.name())))
                .collect(),
            kernel_limbs: KernelChoice::ALL
                .iter()
                .map(|c| registry.counter(&format!("batch.kernel.{}.limbs", c.name())))
                .collect(),
            detect_calls: registry.counter("batch.detect.calls"),
            detect_limbs: registry.counter("batch.detect.limbs"),
            detect_dirty_lanes: registry.counter("batch.detect.dirty_lanes"),
        }
    }
}

impl ColumnMatchProgram {
    /// Buckets a finished entry list by syndrome prefix, and compiles the
    /// flat direct-dispatch table when `direct_eligible`.
    fn new(mut entries: Vec<MatchEntry>, redundancy: usize, direct_eligible: bool) -> Self {
        let prefix_bits = redundancy.min(4);
        debug_assert!(1 << prefix_bits <= PREFIX_SLOTS);
        let prefix_mask = (1u128 << prefix_bits) - 1;
        entries.sort_by_key(|e| e.pattern & prefix_mask);
        let mut buckets = Vec::new();
        let mut start = 0usize;
        while start < entries.len() {
            let prefix = entries[start].pattern & prefix_mask;
            let end = start
                + entries[start..]
                    .iter()
                    .take_while(|e| e.pattern & prefix_mask == prefix)
                    .count();
            buckets.push((prefix as u8, start as u32, end as u32));
            start = end;
        }
        let direct =
            (direct_eligible && redundancy > 0).then(|| DirectTable::compile(&entries, redundancy));
        ColumnMatchProgram {
            prefix_bits,
            entries,
            buckets,
            direct,
        }
    }
}

/// Outcome counts of one detection-only screen
/// ([`BatchCodec::detect_batch_with`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectSummary {
    /// Messages whose syndrome was zero (delivered unchanged).
    pub clean: u64,
    /// Messages whose syndrome was nonzero (flagged for rescrub).
    pub dirty: u64,
}

/// A bit-sliced batch encoder/decoder for one short block code.
///
/// Precomputes, from the scalar code:
///
/// * the generator's column supports (for lane encoding),
/// * the parity-check rows (for lane syndromes),
/// * the per-code [`ColumnMatchProgram`] (for lane decoding),
/// * the pivot/transform pair of [`generator_right_inverse`] (for lane
///   message extraction).
///
/// All masks are single `u128`s, so the code must satisfy `n ≤`
/// [`MAX_BLOCK_LENGTH`]; there is no constraint on the redundancy.
#[derive(Debug, Clone)]
pub struct BatchCodec {
    name: String,
    n: usize,
    k: usize,
    /// `encode_masks[j]`: support of generator column `j` over message bits.
    encode_masks: Vec<u128>,
    /// `syndrome_masks[t]`: support of parity-check row `t` over codeword bits.
    syndrome_masks: Vec<u128>,
    /// The decode engine: a compiled column-matching program, or the
    /// scalar-fallback screen for algebraic decoders.
    engine: DecodeEngine,
    /// `extract_masks[j]`: support over codeword bits whose parity is message
    /// bit `j` (from the generator's right inverse).
    extract_masks: Vec<u128>,
    /// Kernel override for column-matching decodes, seeded from the
    /// `SFQ_BATCH_KERNEL` environment variable at construction (see
    /// [`BatchCodec::with_kernel`]).
    kernel: KernelKind,
    /// Decode-kernel telemetry (write-only; never affects results).
    metrics: DecodeMetrics,
}

impl BatchCodec {
    /// Builds the batch engine for a scalar code + hard decoder.
    ///
    /// The decoder's [`HardDecoder::syndrome_class`] selects the program
    /// builder: `ColumnFlip` decoders compile straight from the columns of
    /// `H` (no syndrome-space enumeration, so the redundancy is unlimited);
    /// `General` decoders are interrogated once per syndrome value.
    ///
    /// # Panics
    /// Panics if the code exceeds `n ≤ 128` (masks are single `u128`s), if
    /// the parity-check matrix does not have full row rank, if a
    /// `ColumnFlip` decoder fails its per-column scalar probe, or if the
    /// decoder declares [`SyndromeClass::Algebraic`] (build those with
    /// [`BatchCodec::with_sliced_algebraic`] — or
    /// [`BatchCodec::with_scalar_fallback`] for the reference engine) or
    /// [`SyndromeClass::Iterative`] (build those with
    /// [`BatchCodec::with_bit_flip`]).
    #[must_use]
    pub fn new<C: BlockCode + HardDecoder>(code: &C) -> Self {
        let engine = |code: &C, redundancy: usize| {
            let (entries, direct_eligible) = if redundancy == 0 {
                // No parity: every word is a codeword, nothing to correct or
                // detect.
                (Vec::new(), false)
            } else {
                let class = code.syndrome_class();
                let entries = match class {
                    SyndromeClass::ColumnFlip => column_flip_entries(code),
                    SyndromeClass::General => interrogated_entries(code),
                    SyndromeClass::Algebraic => panic!(
                        "{}: algebraic decoders have too many correctable syndromes to \
                         tabulate; build with BatchCodec::with_sliced_algebraic (the \
                         default engine — registry members are one BatchCodec::bch_spec \
                         call away), or BatchCodec::with_scalar_fallback for the slow \
                         reference engine",
                        code.name()
                    ),
                    SyndromeClass::Iterative => panic!(
                        "{}: iterative decoders correct by synchronous flip rounds, not \
                         per-syndrome lookup; build with BatchCodec::with_bit_flip",
                        code.name()
                    ),
                };
                (entries, class.direct_dispatch_eligible(redundancy))
            };
            DecodeEngine::ColumnMatch(ColumnMatchProgram::new(
                entries,
                redundancy,
                direct_eligible,
            ))
        };
        Self::build(code, engine)
    }

    /// Builds the batch engine for a [`SyndromeClass::Algebraic`] decoder:
    /// bit-sliced syndrome accumulation with the clean-limb short-circuit,
    /// plus an owned clone of the scalar decoder that is invoked **per dirty
    /// lane only**. `locator_evals_per_word` meters the locator-evaluation
    /// work one scalar decode performs (`batch.bch.locator_evals`).
    ///
    /// # Panics
    /// Panics under the same size/rank conditions as [`BatchCodec::new`].
    #[must_use]
    pub fn with_scalar_fallback<C>(code: &C, locator_evals_per_word: usize) -> Self
    where
        C: BlockCode + HardDecoder + Clone + Send + Sync + 'static,
    {
        let engine = |code: &C, _redundancy: usize| {
            let owned = code.clone();
            DecodeEngine::ScalarFallback(AlgebraicFallback {
                decode: Arc::new(move |word: &BitVec| owned.decode(word)),
                locator_evals_per_word: locator_evals_per_word as u64,
                metrics: AlgebraicMetrics::new("scalar-fallback"),
            })
        };
        Self::build(code, engine)
    }

    /// Builds the batch engine for a [`SyndromeClass::Algebraic`] decoder
    /// that implements [`AlgebraicDecode`]: odd power syndromes are
    /// accumulated **bit-sliced across each dirty limb** (shared by up to 64
    /// lanes; even powers follow from the Frobenius square), and only the
    /// per-lane algebra — Berlekamp–Massey plus the closed-form locator root
    /// solve — runs per dirty lane, with its syndromes supplied for free.
    /// This is the default engine for BCH ([`BatchCodec::bch`]); the
    /// unpack-and-decode [`BatchCodec::with_scalar_fallback`] engine remains
    /// as the slow reference.
    ///
    /// # Panics
    /// Panics under the same size/rank conditions as [`BatchCodec::new`].
    #[must_use]
    pub fn with_sliced_algebraic<C>(code: &C) -> Self
    where
        C: BlockCode + AlgebraicDecode + Clone + Send + Sync + 'static,
    {
        let engine = |code: &C, _redundancy: usize| {
            let plan = code.sliced_syndrome_plan();
            // Weight-1 prefilter: column `j`'s syndrome pattern, probed
            // against the scalar decoder exactly like the ColumnFlip
            // builder's probe — a code whose decoder would not answer
            // syndrome H[:,j] with "flip j" fails loudly here instead of
            // silently diverging from the scalar path.
            let h = code.parity_check();
            let n = code.n();
            let col_syndromes: Vec<u128> = (0..n)
                .map(|j| {
                    let pattern = h.col(j).to_u128();
                    let mut e_j = BitVec::zeros(n);
                    e_j.set(j, true);
                    let decoded = code.decode(&e_j);
                    let corrected_to_zero = decoded
                        .codeword
                        .as_ref()
                        .is_some_and(|cw| cw.is_zero() && decoded.outcome.corrected());
                    assert!(
                        corrected_to_zero,
                        "{}: scalar decoder does not flip position {j} on syndrome \
                         H[:,{j}] — the weight-1 prefilter would diverge",
                        code.name()
                    );
                    pattern
                })
                .collect();
            let owned = code.clone();
            DecodeEngine::SlicedAlgebraic(SlicedAlgebraic {
                plan,
                col_syndromes,
                action: Arc::new(move |synd: &[u16], full: u128| owned.decode_action(synd, full)),
                metrics: AlgebraicMetrics::new("sliced"),
            })
        };
        Self::build(code, engine)
    }

    /// Builds the batch engine for a [`SyndromeClass::Iterative`] decoder
    /// that implements [`IterativeDecode`]: the code's synchronous bit-flip
    /// schedule runs **whole-limb bit-sliced** — each round is one XOR
    /// reduction per low-density check plus one 3-input majority per
    /// variable, shared by up to 64 lanes. Unlike the algebraic engines
    /// there is no per-lane region at all: even an all-dirty limb never
    /// unpacks a lane. This is the engine behind [`BatchCodec::ldpc`].
    ///
    /// # Panics
    /// Panics under the same size/rank conditions as [`BatchCodec::new`],
    /// or if the plan fails [`BitFlipPlan::validate`].
    #[must_use]
    pub fn with_bit_flip<C>(code: &C) -> Self
    where
        C: BlockCode + IterativeDecode,
    {
        let engine = |code: &C, _redundancy: usize| {
            let plan = code.bit_flip_plan();
            plan.validate();
            assert!(
                plan.check_supports.len() <= 64,
                "{}: bit-flip parity slices are a fixed 64-entry array",
                code.name()
            );
            DecodeEngine::BitFlip(BitFlipEngine {
                plan,
                metrics: BitFlipMetrics::new(),
            })
        };
        Self::build(code, engine)
    }

    /// Shared constructor body: masks, extraction lanes, and the engine.
    fn build<C: BlockCode + HardDecoder>(
        code: &C,
        engine: impl FnOnce(&C, usize) -> DecodeEngine,
    ) -> Self {
        let (n, k) = (code.n(), code.k());
        assert!(
            n <= MAX_BLOCK_LENGTH,
            "batch codec masks are u128: n <= {MAX_BLOCK_LENGTH} (got {n})"
        );
        assert!(k <= n, "k must not exceed n");
        let redundancy = n - k;

        let g = code.generator();
        let encode_masks: Vec<u128> = (0..n).map(|j| column_mask(g, j)).collect();

        let h = code.parity_check();
        let syndrome_masks: Vec<u128> = (0..redundancy).map(|t| row_mask(h, t)).collect();

        let engine = engine(code, redundancy);

        let (pivots, transform) = generator_right_inverse(g);
        let extract_masks: Vec<u128> = (0..k)
            .map(|j| {
                pivots
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| transform.get(i, j))
                    .fold(0u128, |mask, (_, &p)| mask | (1u128 << p))
            })
            .collect();

        BatchCodec {
            name: format!("batch[{}]", code.name()),
            n,
            k,
            encode_masks,
            syndrome_masks,
            engine,
            extract_masks,
            kernel: KernelKind::from_env_or_auto(),
            metrics: DecodeMetrics::new(),
        }
    }

    /// Pins the decode kernel for this codec, overriding both auto-dispatch
    /// and the `SFQ_BATCH_KERNEL` environment variable. Every kernel is
    /// bit-identical; this only affects speed (and telemetry attribution).
    /// Algebraic codecs ignore the override — it selects among
    /// column-matching kernels only.
    #[must_use]
    pub fn with_kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self
    }

    /// The kernel dispatch would run for a batch of `batch` messages:
    /// `direct4`, `direct8`, `walk-u64`, `walk-u128`, `walk-w256`,
    /// `sliced`, `scalar-fallback`, or `bit-flip` (the engine-named
    /// algebraic/iterative paths are fixed per constructor). Used by benches
    /// and reports; decode results never depend on it.
    #[must_use]
    pub fn selected_kernel_name(&self, batch: usize) -> &'static str {
        match &self.engine {
            DecodeEngine::ColumnMatch(program) => kernel::select(
                self.kernel,
                program.direct.is_some(),
                self.syndrome_masks.len(),
                batch.div_ceil(64),
            )
            .name(),
            DecodeEngine::SlicedAlgebraic(_) => "sliced",
            DecodeEngine::ScalarFallback(_) => "scalar-fallback",
            DecodeEngine::BitFlip(_) => "bit-flip",
        }
    }

    /// Batch engine for the Hamming(7,4) code.
    #[must_use]
    pub fn hamming74() -> Self {
        Self::new(&Hamming74::new())
    }

    /// Batch engine for the extended Hamming(8,4) code.
    #[must_use]
    pub fn hamming84() -> Self {
        Self::new(&Hamming84::new())
    }

    /// Batch engine for the RM(1,3) code (tie-detecting decoder).
    #[must_use]
    pub fn rm13() -> Self {
        Self::new(&Rm13::new())
    }

    /// Batch engine for a repetition code.
    #[must_use]
    pub fn repetition(k: usize, factor: usize) -> Self {
        Self::new(&Repetition::new(k, factor))
    }

    /// Batch engine for uncoded transmission.
    #[must_use]
    pub fn uncoded(k: usize) -> Self {
        Self::new(&Uncoded::new(k))
    }

    /// Batch engine for the SEC-DED family member with `2^m` data bits
    /// (`m = 6` is the wide (72,64) code).
    #[must_use]
    pub fn sec_ded(m: usize) -> Self {
        Self::new(&SecDed::new(m))
    }

    /// Batch engine for the wide Shortened Hamming(85,64) demonstration code
    /// — 21 syndrome lanes, beyond any tabulable syndrome space.
    #[must_use]
    pub fn wide_hamming_85_64() -> Self {
        Self::new(&ShortenedHamming::wide_85_64())
    }

    /// Batch engine for the multi-error BCH(31,16) code (`t = 2`,
    /// `d_min = 7`): bit-sliced power-syndrome accumulation, per-lane
    /// Berlekamp–Massey + closed-form locator solve on residual dirty lanes
    /// only.
    #[must_use]
    pub fn bch() -> Self {
        Self::bch_spec(BchSpec::BCH_31_16)
    }

    /// Batch engine for any registry BCH member (see [`BchSpec::REGISTRY`]):
    /// the sliced-syndrome engine parameterized by `(m, t, decode_radius)`.
    #[must_use]
    pub fn bch_spec(spec: BchSpec) -> Self {
        Self::with_sliced_algebraic(&Bch::from_spec(spec))
    }

    /// Batch engine for the BCH(63,51) registry member (`t = 2`).
    #[must_use]
    pub fn bch_63_51() -> Self {
        Self::bch_spec(BchSpec::BCH_63_51)
    }

    /// Batch engine for the BCH(63,45) registry member (`t = 3`) — the
    /// strongest algebraic code in the catalog.
    #[must_use]
    pub fn bch_63_45() -> Self {
        Self::bch_spec(BchSpec::BCH_63_45)
    }

    /// Batch engine for the regular Gallager LDPC(60,32) code: whole-limb
    /// synchronous bit flipping, the first decode engine with no per-lane
    /// region even on all-dirty limbs.
    #[must_use]
    pub fn ldpc() -> Self {
        Self::with_bit_flip(&Ldpc::gallager_60_32())
    }

    /// Human-readable name, derived from the scalar code's.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of compiled match entries (one per correctable syndrome).
    /// Scalar-fallback engines compile no entries and report zero.
    #[must_use]
    pub fn program_len(&self) -> usize {
        match &self.engine {
            DecodeEngine::ColumnMatch(program) => program.entries.len(),
            DecodeEngine::SlicedAlgebraic(_)
            | DecodeEngine::ScalarFallback(_)
            | DecodeEngine::BitFlip(_) => 0,
        }
    }

    /// The column-matching decode entry point: resolves the kernel
    /// (direct-dispatch table or bucket walk at the chosen limb width) and
    /// runs it over the limbs. All kernels are bit-identical; dispatch only
    /// affects speed and telemetry attribution.
    fn run_program(
        &self,
        program: &ColumnMatchProgram,
        received: &BitSlice64,
        scratch: &mut BatchScratch,
        out: &mut BatchDecoded,
    ) {
        let redundancy = self.syndrome_masks.len();
        let words = received.words();

        self.syndrome_batch_into(received, &mut scratch.syndromes);

        out.codewords.copy_from(received);
        out.flagged.clear();
        out.flagged.resize(words, 0);
        out.corrected.clear();
        out.corrected.resize(words, 0);

        // Telemetry accumulates in a local struct and flushes once per
        // call, so the limb loops perform no atomic operations.
        let mut stats = KernelStats::default();
        let choice = kernel::select(self.kernel, program.direct.is_some(), redundancy, words);
        match choice {
            KernelChoice::Direct4 => {
                let table = program.direct.as_ref().expect("direct4 needs a table");
                kernel::direct::run_direct4(table, &scratch.syndromes, out, &mut stats);
            }
            KernelChoice::Direct8 => {
                let table = program.direct.as_ref().expect("direct8 needs a table");
                kernel::direct::run_direct8(table, &scratch.syndromes, out, &mut stats);
            }
            KernelChoice::Walk64 => {
                run_walk_chunked::<u64>(program, &scratch.syndromes, out, &mut stats);
            }
            KernelChoice::Walk128 => {
                run_walk_chunked::<u128>(program, &scratch.syndromes, out, &mut stats);
            }
            KernelChoice::Walk256 => {
                run_walk_chunked::<W256>(program, &scratch.syndromes, out, &mut stats);
            }
        }

        self.metrics.calls.inc();
        self.metrics.limbs.add(words as u64);
        self.metrics.clean_limbs.add(stats.clean_limbs);
        self.metrics.buckets_visited.add(stats.buckets_visited);
        self.metrics.buckets_skipped.add(stats.buckets_skipped);
        self.metrics.entries_tested.add(stats.entries_tested);
        self.metrics.lanes_matched.add(stats.lanes_matched);
        self.metrics.lanes_flagged.add(stats.lanes_flagged);
        self.metrics.kernel_selected[choice.index()].inc();
        self.metrics.kernel_limbs[choice.index()].add(words as u64);

        self.extract_message_lanes(received.batch(), out);
    }

    /// The sliced-syndrome decode entry point for algebraic codes: odd
    /// power syndromes are accumulated bit-sliced per dirty limb, and the
    /// per-lane algebra runs with its syndromes supplied for free.
    fn run_sliced_engine(
        &self,
        engine: &SlicedAlgebraic,
        received: &BitSlice64,
        scratch: &mut BatchScratch,
        out: &mut BatchDecoded,
    ) {
        let redundancy = self.syndrome_masks.len();
        let words = received.words();

        self.syndrome_batch_into(received, &mut scratch.syndromes);
        if scratch.gather.len() < redundancy {
            scratch.gather.resize(redundancy, 0);
        }

        out.codewords.copy_from(received);
        out.flagged.clear();
        out.flagged.resize(words, 0);
        out.corrected.clear();
        out.corrected.resize(words, 0);

        let mut stats = SlicedStats::default();
        run_sliced(
            &engine.plan,
            &engine.col_syndromes,
            engine.action.as_ref(),
            &scratch.syndromes,
            &mut scratch.gather[..redundancy],
            out,
            &mut stats,
        );

        self.metrics.calls.inc();
        self.metrics.limbs.add(words as u64);
        self.metrics.clean_limbs.add(stats.clean_limbs);
        self.metrics.lanes_matched.add(stats.corrected);
        self.metrics.lanes_flagged.add(stats.flagged);
        engine.metrics.dirty_lanes.add(stats.dirty_lanes);
        engine.metrics.fallback_corrected.add(stats.corrected);
        engine.metrics.fallback_flagged.add(stats.flagged);
        engine.metrics.locator_evals.add(stats.locator_evals);
        engine.metrics.sliced_syndrome_limbs.add(stats.sliced_limbs);
        engine.metrics.kernel_selected.inc();
        engine.metrics.kernel_limbs.add(words as u64);

        self.extract_message_lanes(received.batch(), out);
    }

    /// The bit-flipping decode entry point for iterative codes: the whole
    /// decoder — check parities and majority flips alike — runs bit-sliced,
    /// with the usual clean-limb short-circuit and no per-lane region.
    fn run_bit_flip_engine(
        &self,
        engine: &BitFlipEngine,
        received: &BitSlice64,
        scratch: &mut BatchScratch,
        out: &mut BatchDecoded,
    ) {
        let redundancy = self.syndrome_masks.len();
        let words = received.words();

        self.syndrome_batch_into(received, &mut scratch.syndromes);
        if scratch.gather.len() < redundancy {
            scratch.gather.resize(redundancy, 0);
        }

        out.codewords.copy_from(received);
        out.flagged.clear();
        out.flagged.resize(words, 0);
        out.corrected.clear();
        out.corrected.resize(words, 0);

        let mut stats = BitFlipStats::default();
        run_bit_flip(
            &engine.plan,
            received,
            &scratch.syndromes,
            &mut scratch.gather[..redundancy],
            out,
            &mut stats,
        );

        self.metrics.calls.inc();
        self.metrics.limbs.add(words as u64);
        self.metrics.clean_limbs.add(stats.clean_limbs);
        self.metrics.lanes_matched.add(stats.corrected);
        self.metrics.lanes_flagged.add(stats.flagged);
        engine.metrics.dirty_lanes.add(stats.dirty_lanes);
        engine.metrics.corrected.add(stats.corrected);
        engine.metrics.flagged.add(stats.flagged);
        engine.metrics.rounds.add(stats.rounds);
        engine.metrics.flips.add(stats.flips);
        engine.metrics.flip_limbs.add(stats.flip_limbs);
        engine.metrics.kernel_selected.inc();
        engine.metrics.kernel_limbs.add(words as u64);

        self.extract_message_lanes(received.batch(), out);
    }

    /// The scalar-fallback decode kernel for algebraic decoders: bit-sliced
    /// syndrome accumulation screens the limbs exactly like the
    /// column-matching kernel (same clean-limb short-circuit), and each
    /// dirty lane — syndrome nonzero — is unpacked and decoded by the owned
    /// scalar decoder, whose corrected codeword (or error flag) is written
    /// back into the lane. Only dirty lanes ever allocate.
    fn run_fallback(
        &self,
        fallback: &AlgebraicFallback,
        received: &BitSlice64,
        scratch: &mut BatchScratch,
        out: &mut BatchDecoded,
    ) {
        let redundancy = self.syndrome_masks.len();
        let words = received.words();
        let tail = received.tail_mask();

        self.syndrome_batch_into(received, &mut scratch.syndromes);
        if scratch.gather.len() < redundancy {
            scratch.gather.resize(redundancy, 0);
        }

        out.codewords.copy_from(received);
        out.flagged.clear();
        out.flagged.resize(words, 0);
        out.corrected.clear();
        out.corrected.resize(words, 0);

        // Telemetry in locals, flushed once per call (no atomics per limb).
        let mut clean_limbs = 0u64;
        let mut dirty_lanes = 0u64;
        let mut fallback_corrected = 0u64;
        let mut fallback_flagged = 0u64;
        let mut lanes_flagged = 0u64;
        let mut lanes_matched = 0u64;

        for w in 0..words {
            let valid = if w + 1 == words { tail } else { u64::MAX };
            let gather = &mut scratch.gather[..redundancy];
            scratch.syndromes.gather_word(w, gather);

            // Clean-limb short-circuit, identical to the column-matching
            // kernel: all-zero syndromes need no per-lane work at all.
            let mut dirty = or_reduce(gather) & valid;
            if dirty == 0 {
                clean_limbs += 1;
                continue;
            }

            while dirty != 0 {
                let bit = dirty & dirty.wrapping_neg();
                let lane = w * 64 + bit.trailing_zeros() as usize;
                dirty &= dirty - 1;
                dirty_lanes += 1;

                let word = received.extract(lane);
                let decoded = (fallback.decode)(&word);
                match decoded.outcome {
                    DecodeOutcome::DetectedUncorrectable => {
                        out.flagged[w] |= bit;
                        fallback_flagged += 1;
                    }
                    _ => {
                        let codeword = decoded
                            .codeword
                            .expect("non-detected decode must produce a codeword");
                        for p in 0..self.n {
                            if codeword.get(p) != word.get(p) {
                                out.codewords.lane_mut(p)[w] ^= bit;
                            }
                        }
                        out.corrected[w] |= bit;
                        fallback_corrected += 1;
                    }
                }
            }
            lanes_matched += u64::from(out.corrected[w].count_ones());
            lanes_flagged += u64::from(out.flagged[w].count_ones());
        }

        self.metrics.calls.inc();
        self.metrics.limbs.add(words as u64);
        self.metrics.clean_limbs.add(clean_limbs);
        self.metrics.lanes_matched.add(lanes_matched);
        self.metrics.lanes_flagged.add(lanes_flagged);
        fallback.metrics.dirty_lanes.add(dirty_lanes);
        fallback.metrics.fallback_corrected.add(fallback_corrected);
        fallback.metrics.fallback_flagged.add(fallback_flagged);
        fallback
            .metrics
            .locator_evals
            .add(dirty_lanes * fallback.locator_evals_per_word);
        fallback.metrics.kernel_selected.inc();
        fallback.metrics.kernel_limbs.add(words as u64);

        self.extract_message_lanes(received.batch(), out);
    }

    /// Detection-only decode: computes the syndrome batch and classifies
    /// each message as clean (zero syndrome) or dirty (nonzero), **without
    /// running any correction kernel** — no column matching, no per-lane
    /// algebra, no message extraction. This is the degraded decode mode of
    /// the streaming scrub service (`sfq-stream`): under overload a
    /// SEC-DED-class code stops correcting and merely *detects*, delivering
    /// clean words unchanged and flagging dirty ones for rescrub at a
    /// fraction of the full-decode cost.
    ///
    /// `dirty` receives one limb per 64 messages (bit `i % 64` of limb
    /// `i / 64` set when message `i` has a nonzero syndrome), re-shaped in
    /// place like every other `_with` buffer. Note the semantics are weaker
    /// than a full decode on purpose: a dirty lane may carry a *correctable*
    /// error — detection-only mode trades that correction away for latency.
    ///
    /// # Panics
    /// Panics if `received.bits() != self.n()`.
    pub fn detect_batch_with(
        &self,
        received: &BitSlice64,
        scratch: &mut BatchScratch,
        dirty: &mut Vec<u64>,
    ) -> DetectSummary {
        assert_eq!(received.bits(), self.n, "received lanes must equal n");
        let redundancy = self.syndrome_masks.len();
        let words = received.words();
        let tail = received.tail_mask();

        self.syndrome_batch_into(received, &mut scratch.syndromes);
        if scratch.gather.len() < redundancy {
            scratch.gather.resize(redundancy, 0);
        }
        dirty.clear();
        dirty.resize(words, 0);

        let mut dirty_lanes = 0u64;
        for (w, slot) in dirty.iter_mut().enumerate() {
            let valid = if w + 1 == words { tail } else { u64::MAX };
            let gather = &mut scratch.gather[..redundancy];
            scratch.syndromes.gather_word(w, gather);
            let mask = or_reduce(gather) & valid;
            *slot = mask;
            dirty_lanes += u64::from(mask.count_ones());
        }

        self.metrics.detect_calls.inc();
        self.metrics.detect_limbs.add(words as u64);
        self.metrics.detect_dirty_lanes.add(dirty_lanes);

        DetectSummary {
            clean: received.batch() as u64 - dirty_lanes,
            dirty: dirty_lanes,
        }
    }

    /// Allocating convenience form of [`BatchCodec::detect_batch_with`].
    ///
    /// # Panics
    /// Panics if `received.bits() != self.n()`.
    #[must_use]
    pub fn detect_batch(&self, received: &BitSlice64) -> (Vec<u64>, DetectSummary) {
        let mut scratch = BatchScratch::new();
        let mut dirty = Vec::new();
        let summary = self.detect_batch_with(received, &mut scratch, &mut dirty);
        (dirty, summary)
    }

    /// Message lanes: parity of the extraction support over the corrected
    /// codeword lanes, masked out at flagged positions.
    fn extract_message_lanes(&self, batch: usize, out: &mut BatchDecoded) {
        out.messages.reset(self.k, batch);
        for (j, &mask) in self.extract_masks.iter().enumerate() {
            let mut m = mask;
            while m != 0 {
                let p = m.trailing_zeros() as usize;
                out.messages.xor_lane_from(j, &out.codewords, p);
                m &= m - 1;
            }
            let lane = out.messages.lane_mut(j);
            for (l, &f) in lane.iter_mut().zip(out.flagged.iter()) {
                *l &= !f;
            }
        }
    }
}

impl BatchEncode for BatchCodec {
    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn encode_batch(&self, messages: &BitSlice64) -> BitSlice64 {
        let mut out = BitSlice64::default();
        self.encode_batch_into(messages, &mut out);
        out
    }

    fn encode_batch_into(&self, messages: &BitSlice64, codewords: &mut BitSlice64) {
        assert_eq!(messages.bits(), self.k, "message lanes must equal k");
        codewords.reset(self.n, messages.batch());
        for (j, &mask) in self.encode_masks.iter().enumerate() {
            let mut m = mask;
            while m != 0 {
                let i = m.trailing_zeros() as usize;
                codewords.xor_lane_from(j, messages, i);
                m &= m - 1;
            }
        }
    }
}

impl BatchDecode for BatchCodec {
    fn syndrome_batch(&self, received: &BitSlice64) -> BitSlice64 {
        let mut out = BitSlice64::default();
        self.syndrome_batch_into(received, &mut out);
        out
    }

    fn syndrome_batch_into(&self, received: &BitSlice64, syndromes: &mut BitSlice64) {
        assert_eq!(received.bits(), self.n, "received lanes must equal n");
        syndromes.reset(self.syndrome_masks.len(), received.batch());
        for (t, &mask) in self.syndrome_masks.iter().enumerate() {
            let mut m = mask;
            while m != 0 {
                let p = m.trailing_zeros() as usize;
                syndromes.xor_lane_from(t, received, p);
                m &= m - 1;
            }
        }
    }

    fn decode_batch(&self, received: &BitSlice64) -> BatchDecoded {
        let mut scratch = BatchScratch::new();
        let mut out = BatchDecoded::empty();
        self.decode_batch_with(received, &mut scratch, &mut out);
        out
    }

    fn decode_batch_with(
        &self,
        received: &BitSlice64,
        scratch: &mut BatchScratch,
        out: &mut BatchDecoded,
    ) {
        assert_eq!(received.bits(), self.n, "received lanes must equal n");
        match &self.engine {
            DecodeEngine::ColumnMatch(program) => {
                self.run_program(program, received, scratch, out);
            }
            DecodeEngine::SlicedAlgebraic(engine) => {
                self.run_sliced_engine(engine, received, scratch, out);
            }
            DecodeEngine::ScalarFallback(fallback) => {
                self.run_fallback(fallback, received, scratch, out);
            }
            DecodeEngine::BitFlip(engine) => {
                self.run_bit_flip_engine(engine, received, scratch, out);
            }
        }
    }
}

/// Support of generator column `j` as a mask over message-bit indices.
fn column_mask(g: &BitMat, j: usize) -> u128 {
    (0..g.rows()).fold(0u128, |mask, i| {
        if g.get(i, j) {
            mask | (1u128 << i)
        } else {
            mask
        }
    })
}

/// Support of parity-check row `t` as a mask over codeword positions.
fn row_mask(h: &BitMat, t: usize) -> u128 {
    (0..h.cols()).fold(0u128, |mask, p| {
        if h.get(t, p) {
            mask | (1u128 << p)
        } else {
            mask
        }
    })
}

/// Compiles a [`SyndromeClass::ColumnFlip`] decoder straight from the
/// parity-check matrix: one entry per codeword position, matching the
/// position's column and flipping that single bit. Detected syndromes are
/// the complement and need no entries.
///
/// Construction cost is `O(n · r)` plus one scalar probe per position — the
/// probe re-verifies the declared class against the actual decoder, so a
/// code that wrongly claims `ColumnFlip` fails loudly here rather than
/// producing a silently divergent batch engine.
///
/// # Panics
/// Panics if `H` has a zero or duplicated column (the class needs
/// `d_min ≥ 3`), or if the scalar decoder's response to a single-bit error
/// is not "flip exactly that bit".
fn column_flip_entries<C: BlockCode + HardDecoder>(code: &C) -> Vec<MatchEntry> {
    let n = code.n();
    let h = code.parity_check();
    let mut entries: Vec<MatchEntry> = Vec::with_capacity(n);
    for j in 0..n {
        let pattern = h.col(j).to_u128();
        assert_ne!(pattern, 0, "H column {j} is zero: not a ColumnFlip code");
        assert!(
            entries.iter().all(|e| e.pattern != pattern),
            "H column {j} duplicates another column: not a ColumnFlip code"
        );
        // Probe: the scalar decoder must answer a single-bit error at `j`
        // by flipping exactly `j` (i.e. decode e_j back to the zero word).
        let mut e_j = BitVec::zeros(n);
        e_j.set(j, true);
        let decoded = code.decode(&e_j);
        let corrected_to_zero = decoded
            .codeword
            .as_ref()
            .is_some_and(|cw| cw.is_zero() && decoded.outcome.corrected());
        assert!(
            corrected_to_zero,
            "{}: scalar decoder does not flip position {j} on syndrome H[:,{j}] — \
             the decoder is not SyndromeClass::ColumnFlip",
            code.name()
        );
        entries.push(MatchEntry {
            pattern,
            flip: 1u128 << j,
        });
    }
    entries
}

/// Compiles a [`SyndromeClass::General`] decoder by interrogating it once
/// per syndrome value and recording an entry for every syndrome it corrects
/// (detected syndromes are the complement and need no entries).
///
/// For each syndrome `s`, a representative received word with that syndrome
/// is constructed from the row-reduced parity-check matrix: row-reducing
/// `[H | I_{n-k}]` gives `[R | T]` with `R = T·H` and pivot columns `p_i`;
/// the word `r = Σ_i (T·s)_i · e_{p_i}` satisfies `H·r = s`. The decoder's
/// response to `r` — flip pattern or error flag — is the action for every
/// word in that coset.
///
/// # Panics
/// Panics if `H` does not have full row rank, or if the redundancy exceeds
/// 28 — this builder enumerates all `2^(n-k)` syndromes, which is a property
/// of general coset decoders, not of the batch engine; wide-redundancy codes
/// must provide a [`SyndromeClass::ColumnFlip`] decoder instead.
fn interrogated_entries<C: BlockCode + HardDecoder>(code: &C) -> Vec<MatchEntry> {
    let n = code.n();
    let redundancy = n - code.k();
    assert!(
        redundancy <= 28,
        "{}: general-class decoders are compiled by enumerating all 2^(n-k) syndromes, \
         which is impractical at n-k = {redundancy}; implement SyndromeClass::ColumnFlip \
         (or another structural class) for this decoder",
        code.name()
    );
    let table_len = 1u64 << redundancy;

    let h = code.parity_check();
    let augmented = h.hconcat(&BitMat::identity(redundancy));
    let (reduced, pivots) = augmented.rref();
    assert_eq!(pivots.len(), redundancy, "H must have full row rank");
    assert!(
        pivots.iter().all(|&p| p < n),
        "H pivots must be data columns"
    );
    // Row `i` of the transform `T`, as a BitVec for the dot products below.
    let t_rows: Vec<BitVec> = (0..redundancy)
        .map(|i| (0..redundancy).map(|t| reduced.get(i, n + t)).collect())
        .collect();

    let mut entries = Vec::new();
    for s in 1..table_len {
        let syndrome = BitVec::from_u64(redundancy, s);
        // a = T · s, then r = Σ a_i e_{p_i}.
        let mut representative = BitVec::zeros(n);
        for (i, &p) in pivots.iter().enumerate() {
            if t_rows[i].dot(&syndrome) {
                representative.set(p, true);
            }
        }
        debug_assert_eq!(code.syndrome(&representative), syndrome);

        let decoded = code.decode(&representative);
        match decoded.outcome {
            DecodeOutcome::DetectedUncorrectable => {} // handled by complement
            _ => {
                let codeword = decoded
                    .codeword
                    .expect("non-detected decode must produce a codeword");
                let flip = (&representative ^ &codeword).to_u128();
                debug_assert_ne!(flip, 0, "nonzero syndrome must flip something");
                entries.push(MatchEntry {
                    pattern: u128::from(s),
                    flip,
                });
            }
        }
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_messages(k: usize, batch: usize, seed: u64) -> Vec<BitVec> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..batch)
            .map(|_| BitVec::from_u64(k, rng.random_range(0..(1u64 << k))))
            .collect()
    }

    #[test]
    fn encode_batch_matches_scalar_for_all_paper_codes() {
        type ScalarEncode = Box<dyn Fn(&BitVec) -> BitVec>;
        let cases: Vec<(BatchCodec, ScalarEncode)> = vec![
            (BatchCodec::hamming74(), {
                let c = Hamming74::new();
                Box::new(move |m| c.encode(m))
            }),
            (BatchCodec::hamming84(), {
                let c = Hamming84::new();
                Box::new(move |m| c.encode(m))
            }),
            (BatchCodec::rm13(), {
                let c = Rm13::new();
                Box::new(move |m| c.encode(m))
            }),
            (BatchCodec::repetition(4, 2), {
                let c = Repetition::new(4, 2);
                Box::new(move |m| c.encode(m))
            }),
            (BatchCodec::uncoded(4), {
                let c = Uncoded::new(4);
                Box::new(move |m| c.encode(m))
            }),
        ];
        for (codec, scalar) in cases {
            let messages = random_messages(codec.k(), 130, 7);
            let batch = BitSlice64::pack(&messages);
            let encoded = codec.encode_batch(&batch).unpack();
            for (m, cw) in messages.iter().zip(&encoded) {
                assert_eq!(cw, &scalar(m), "{}", codec.name());
            }
        }
    }

    #[test]
    fn syndrome_batch_matches_scalar() {
        let code = Hamming84::new();
        let codec = BatchCodec::hamming84();
        let mut rng = StdRng::seed_from_u64(11);
        let words: Vec<BitVec> = (0..100)
            .map(|_| BitVec::from_u64(8, rng.random_range(0..256)))
            .collect();
        let batch = BitSlice64::pack(&words);
        let syndromes = codec.syndrome_batch(&batch);
        for (i, w) in words.iter().enumerate() {
            assert_eq!(syndromes.extract(i), code.syndrome(w), "word {i}");
        }
    }

    #[test]
    fn decode_batch_roundtrips_clean_codewords() {
        let codec = BatchCodec::hamming84();
        let messages = random_messages(4, 96, 3);
        let batch = BitSlice64::pack(&messages);
        let decoded = codec.decode_batch(&codec.encode_batch(&batch));
        assert_eq!(decoded.flagged_count(), 0);
        assert_eq!(decoded.corrected_count(), 0);
        assert_eq!(decoded.messages.unpack(), messages);
    }

    #[test]
    fn decode_batch_corrects_single_errors_and_flags_doubles() {
        let codec = BatchCodec::hamming84();
        let messages = random_messages(4, 64, 9);
        let clean = codec.encode_batch(&BitSlice64::pack(&messages));
        // Message i gets a 1-bit error at position i % 8; messages 5 and 6
        // additionally get a second error (-> double, must be flagged).
        let mut received = clean.clone();
        for i in 0..64 {
            received.set(i, i % 8, !received.get(i, i % 8));
        }
        for &i in &[5usize, 6] {
            let pos = (i + 1) % 8;
            received.set(i, pos, !received.get(i, pos));
        }
        let decoded = codec.decode_batch(&received);
        for (i, message) in messages.iter().enumerate() {
            if i == 5 || i == 6 {
                assert!(decoded.is_flagged(i), "message {i} must be flagged");
            } else {
                assert!(!decoded.is_flagged(i));
                assert!(decoded.is_corrected(i));
                assert_eq!(decoded.messages.extract(i), *message, "message {i}");
            }
        }
        assert_eq!(decoded.flagged_count(), 2);
    }

    /// Detection-only screening agrees with the full decode on every code
    /// family: a lane is dirty exactly when the full decoder either corrects
    /// or flags it (zero syndrome ⇔ untouched codeword), for ragged batches
    /// and across all three engines (column match, sliced algebraic).
    #[test]
    fn detect_batch_matches_full_decode_classification() {
        for codec in [
            BatchCodec::sec_ded(3),
            BatchCodec::hamming84(),
            BatchCodec::bch(),
            BatchCodec::bch_63_45(),
            BatchCodec::ldpc(),
        ] {
            let batch = 190usize;
            let msgs = random_messages(codec.k(), batch, 21);
            let mut received = codec.encode_batch(&BitSlice64::pack(&msgs));
            // Sprinkle deterministic errors: single flips, double flips, and
            // untouched lanes.
            let mut rng = StdRng::seed_from_u64(33);
            for i in (0..batch).step_by(3) {
                let p = rng.random_range(0..codec.n());
                received.set(i, p, !received.get(i, p));
                if i % 6 == 0 {
                    let q = (p + 1) % codec.n();
                    received.set(i, q, !received.get(i, q));
                }
            }

            let (dirty, summary) = codec.detect_batch(&received);
            let decoded = codec.decode_batch(&received);
            for (w, mask) in dirty.iter().enumerate() {
                assert_eq!(
                    *mask,
                    decoded.corrected[w] | decoded.flagged[w],
                    "{}: limb {w} dirty mask must equal corrected|flagged",
                    codec.name()
                );
            }
            let expect_dirty = (decoded.corrected_count() + decoded.flagged_count()) as u64;
            assert_eq!(summary.dirty, expect_dirty, "{}", codec.name());
            assert_eq!(summary.clean + summary.dirty, batch as u64);
        }
    }

    #[test]
    fn detect_batch_reuses_scratch_without_allocating_results() {
        let codec = BatchCodec::sec_ded(6);
        let messages = random_messages(63, 200, 5);
        let padded: Vec<BitVec> = messages
            .iter()
            .map(|m| {
                let mut v = BitVec::zeros(64);
                for b in 0..63 {
                    v.set(b, m.get(b));
                }
                v
            })
            .collect();
        let clean = codec.encode_batch(&BitSlice64::pack(&padded));
        let mut scratch = BatchScratch::new();
        let mut dirty = Vec::new();
        let summary = codec.detect_batch_with(&clean, &mut scratch, &mut dirty);
        assert_eq!(
            summary,
            DetectSummary {
                clean: 200,
                dirty: 0
            }
        );
        assert!(dirty.iter().all(|&m| m == 0));
        // A second call with one corrupted lane re-shapes the same buffers.
        let mut received = clean.clone();
        received.set(130, 7, !received.get(130, 7));
        let summary = codec.detect_batch_with(&received, &mut scratch, &mut dirty);
        assert_eq!(
            summary,
            DetectSummary {
                clean: 199,
                dirty: 1
            }
        );
        assert_eq!(dirty[130 / 64], 1u64 << (130 % 64));
    }

    #[test]
    fn uncoded_codec_passes_everything_through() {
        let codec = BatchCodec::uncoded(4);
        let messages = random_messages(4, 70, 21);
        let batch = BitSlice64::pack(&messages);
        let encoded = codec.encode_batch(&batch);
        assert_eq!(encoded.unpack(), messages);
        let decoded = codec.decode_batch(&encoded);
        assert_eq!(decoded.flagged_count(), 0);
        assert_eq!(decoded.messages.unpack(), messages);
    }

    #[test]
    fn repetition_decode_matches_majority_vote() {
        let scalar = Repetition::new(2, 3);
        let codec = BatchCodec::repetition(2, 3);
        // All 64 possible received words of the (6,2) code.
        let words: Vec<BitVec> = (0u64..64).map(|w| BitVec::from_u64(6, w)).collect();
        let decoded = codec.decode_batch(&BitSlice64::pack(&words));
        for (i, w) in words.iter().enumerate() {
            let reference = scalar.decode(w);
            match reference.outcome {
                DecodeOutcome::DetectedUncorrectable => assert!(decoded.is_flagged(i)),
                _ => {
                    assert!(!decoded.is_flagged(i));
                    assert_eq!(Some(decoded.messages.extract(i)), reference.message);
                }
            }
        }
    }

    #[test]
    fn partial_last_limb_batches_are_handled() {
        let codec = BatchCodec::hamming74();
        for batch_size in [1usize, 63, 65, 127] {
            let messages = random_messages(4, batch_size, batch_size as u64);
            let clean = codec.encode_batch(&BitSlice64::pack(&messages));
            let mut received = clean.clone();
            if batch_size > 2 {
                received.set(batch_size - 1, 3, !received.get(batch_size - 1, 3));
            }
            let decoded = codec.decode_batch(&received);
            assert_eq!(decoded.messages.unpack().len(), batch_size);
            for (i, m) in messages.iter().enumerate() {
                assert_eq!(
                    decoded.messages.extract(i),
                    *m,
                    "batch {batch_size} msg {i}"
                );
            }
        }
    }

    #[test]
    fn codec_reports_code_parameters() {
        let codec = BatchCodec::hamming84();
        assert_eq!((codec.n(), codec.k()), (8, 4));
        assert!(codec.name().contains("Hamming(8,4)"));
    }

    #[test]
    fn column_flip_codes_compile_to_n_entries() {
        // ColumnFlip programs have exactly one entry per codeword position,
        // independent of the syndrome-space size.
        assert_eq!(BatchCodec::hamming74().program_len(), 7);
        assert_eq!(BatchCodec::hamming84().program_len(), 8);
        assert_eq!(BatchCodec::rm13().program_len(), 8);
        assert_eq!(BatchCodec::sec_ded(6).program_len(), 72);
        assert_eq!(BatchCodec::wide_hamming_85_64().program_len(), 85);
        // The r = 0 degenerate case has nothing to match; the algebraic and
        // iterative engines compile no entries at all.
        assert_eq!(BatchCodec::uncoded(4).program_len(), 0);
        assert_eq!(BatchCodec::bch().program_len(), 0);
        assert_eq!(BatchCodec::bch_63_45().program_len(), 0);
        assert_eq!(BatchCodec::ldpc().program_len(), 0);
        // General-class codes keep interrogated entries (correctable
        // syndromes only): the (8,4) factor-2 repetition code corrects
        // nothing (every disagreement is a tie), the (6,2) factor-3 code
        // corrects every nonzero syndrome.
        assert_eq!(BatchCodec::repetition(4, 2).program_len(), 0);
        assert_eq!(BatchCodec::repetition(2, 3).program_len(), 15);
    }

    #[test]
    fn scratch_reuse_across_codes_and_batch_sizes_is_bit_exact() {
        // One scratch + output pair threaded through decodes of different
        // codes and batch shapes must reproduce the allocating path exactly.
        let mut scratch = BatchScratch::new();
        let mut out = BatchDecoded::empty();
        let mut rng = StdRng::seed_from_u64(0x5C8A7C4);
        for codec in [
            BatchCodec::sec_ded(6),
            BatchCodec::hamming84(),
            BatchCodec::wide_hamming_85_64(),
            BatchCodec::hamming74(),
        ] {
            for batch_size in [5usize, 64, 131] {
                let words: Vec<BitVec> = (0..batch_size)
                    .map(|_| {
                        (0..codec.n())
                            .map(|_| rng.random::<u64>() & 1 == 1)
                            .collect::<BitVec>()
                    })
                    .collect();
                let batch = BitSlice64::pack(&words);
                let reference = codec.decode_batch(&batch);
                codec.decode_batch_with(&batch, &mut scratch, &mut out);
                assert_eq!(out.messages, reference.messages, "{}", codec.name());
                assert_eq!(out.codewords, reference.codewords, "{}", codec.name());
                assert_eq!(out.flagged, reference.flagged, "{}", codec.name());
                assert_eq!(out.corrected, reference.corrected, "{}", codec.name());
            }
        }
    }

    #[test]
    fn encode_into_reuses_buffers_bit_exactly() {
        let codec = BatchCodec::sec_ded(4);
        let mut buffer = BitSlice64::default();
        for (batch_size, seed) in [(130usize, 1u64), (7, 2), (64, 3)] {
            let messages: Vec<BitVec> = random_messages(16, batch_size, seed);
            let batch = BitSlice64::pack(&messages);
            codec.encode_batch_into(&batch, &mut buffer);
            assert_eq!(buffer, codec.encode_batch(&batch));
        }
    }

    #[test]
    fn secded_72_64_batch_corrects_singles_and_flags_doubles() {
        // The widest SEC-DED member: 72 lanes (beyond one u64 mask), 8
        // syndrome lanes. Messages are 64-bit, drawn from a seeded RNG.
        let codec = BatchCodec::sec_ded(6);
        assert_eq!((codec.n(), codec.k()), (72, 64));
        let mut rng = StdRng::seed_from_u64(0x7264);
        let messages: Vec<BitVec> = (0..130)
            .map(|_| BitVec::from_u64(64, rng.random::<u64>()))
            .collect();
        let clean = codec.encode_batch(&BitSlice64::pack(&messages));

        // Clean round trip.
        let decoded = codec.decode_batch(&clean);
        assert_eq!(decoded.flagged_count(), 0);
        assert_eq!(decoded.messages.unpack(), messages);

        // One error per word: corrected. Words 10 and 100 get a second
        // error: flagged.
        let mut received = clean.clone();
        for i in 0..130 {
            let pos = rng.random_range(0..72usize);
            received.set(i, pos, !received.get(i, pos));
            if i == 10 || i == 100 {
                let second = (pos + 1 + rng.random_range(0..70usize)) % 72;
                received.set(i, second, !received.get(i, second));
            }
        }
        let decoded = codec.decode_batch(&received);
        for (i, message) in messages.iter().enumerate() {
            if i == 10 || i == 100 {
                assert!(decoded.is_flagged(i), "word {i} must be flagged");
            } else {
                assert!(decoded.is_corrected(i), "word {i}");
                assert_eq!(decoded.messages.extract(i), *message, "word {i}");
            }
        }
        assert_eq!(decoded.flagged_count(), 2);
    }

    #[test]
    fn secded_batch_matches_scalar_for_whole_family() {
        for m in 3..=6 {
            let scalar = SecDed::new(m);
            let codec = BatchCodec::sec_ded(m);
            let mut rng = StdRng::seed_from_u64(m as u64);
            let k = scalar.k();
            let messages: Vec<BitVec> = (0..64)
                .map(|_| {
                    (0..k)
                        .map(|_| rng.random::<u64>() & 1 == 1)
                        .collect::<BitVec>()
                })
                .collect();
            let encoded = codec.encode_batch(&BitSlice64::pack(&messages));
            for (i, msg) in messages.iter().enumerate() {
                assert_eq!(encoded.extract(i), scalar.encode(msg), "m={m} word {i}");
            }
        }
    }

    #[test]
    fn shortened_hamming_3832_works_in_batch_form() {
        // Exercises 6 syndrome lanes and 38-bit words through the ColumnFlip
        // builder.
        let scalar = ecc::ShortenedHamming3832::new();
        let codec = BatchCodec::new(&scalar);
        let mut rng = StdRng::seed_from_u64(5);
        let messages: Vec<BitVec> = (0..64)
            .map(|_| BitVec::from_u64(32, rng.random::<u64>() & 0xFFFF_FFFF))
            .collect();
        let clean = codec.encode_batch(&BitSlice64::pack(&messages));
        let mut received = clean.clone();
        for i in 0..64 {
            let pos = rng.random_range(0..38usize);
            received.set(i, pos, !received.get(i, pos));
        }
        let decoded = codec.decode_batch(&received);
        for (i, m) in messages.iter().enumerate() {
            assert!(!decoded.is_flagged(i));
            assert_eq!(decoded.messages.extract(i), *m, "msg {i}");
        }
    }

    #[test]
    fn bch_codec_roundtrips_and_corrects_up_to_two_errors() {
        let scalar = Bch::bch_31_16();
        let codec = BatchCodec::bch();
        assert_eq!((codec.n(), codec.k()), (31, 16));
        assert!(codec.name().contains("BCH(31,16)"));
        let mut rng = StdRng::seed_from_u64(0x3116);
        let messages: Vec<BitVec> = (0..130)
            .map(|_| BitVec::from_u64(16, rng.random_range(0..1 << 16)))
            .collect();
        let clean = codec.encode_batch(&BitSlice64::pack(&messages));
        for (i, msg) in messages.iter().enumerate() {
            assert_eq!(clean.extract(i), scalar.encode(msg), "word {i}");
        }

        // Clean round trip: every limb short-circuits.
        let decoded = codec.decode_batch(&clean);
        assert_eq!(decoded.flagged_count(), 0);
        assert_eq!(decoded.corrected_count(), 0);
        assert_eq!(decoded.messages.unpack(), messages);

        // Word i gets (i % 3) errors: 0 clean, 1 single, 2 double — all
        // recovered; words 7 and 80 get a triple — flagged.
        let mut received = clean.clone();
        for i in 0..130 {
            let errors = if i == 7 || i == 80 { 3 } else { i % 3 };
            let mut hit = Vec::new();
            while hit.len() < errors {
                let pos = rng.random_range(0..31usize);
                if !hit.contains(&pos) {
                    hit.push(pos);
                    received.set(i, pos, !received.get(i, pos));
                }
            }
        }
        let decoded = codec.decode_batch(&received);
        for (i, message) in messages.iter().enumerate() {
            if i == 7 || i == 80 {
                assert!(decoded.is_flagged(i), "word {i} must be flagged");
            } else {
                assert!(!decoded.is_flagged(i), "word {i}");
                assert_eq!(decoded.is_corrected(i), i % 3 != 0, "word {i}");
                assert_eq!(decoded.messages.extract(i), *message, "word {i}");
            }
        }
        assert_eq!(decoded.flagged_count(), 2);
    }

    #[test]
    fn bch_scratch_reuse_is_bit_exact() {
        let codec = BatchCodec::bch();
        let mut scratch = BatchScratch::new();
        let mut out = BatchDecoded::empty();
        let mut rng = StdRng::seed_from_u64(0xFA11_BACC);
        for batch_size in [3usize, 64, 131] {
            let words: Vec<BitVec> = (0..batch_size)
                .map(|_| {
                    (0..31)
                        .map(|_| rng.random::<u64>() & 1 == 1)
                        .collect::<BitVec>()
                })
                .collect();
            let batch = BitSlice64::pack(&words);
            let reference = codec.decode_batch(&batch);
            codec.decode_batch_with(&batch, &mut scratch, &mut out);
            assert_eq!(out.messages, reference.messages);
            assert_eq!(out.codewords, reference.codewords);
            assert_eq!(out.flagged, reference.flagged);
            assert_eq!(out.corrected, reference.corrected);
        }
    }

    #[test]
    #[should_panic(expected = "with_sliced_algebraic")]
    fn algebraic_decoders_reject_the_plain_constructor() {
        let _ = BatchCodec::new(&Bch::bch_31_16());
    }

    #[test]
    #[should_panic(expected = "with_bit_flip")]
    fn iterative_decoders_reject_the_plain_constructor() {
        let _ = BatchCodec::new(&Ldpc::gallager_60_32());
    }

    #[test]
    fn sliced_bch_engine_matches_the_scalar_fallback_engine() {
        // The sliced-syndrome engine (default, with the weight-1 column
        // prefilter) and the unpack-and-decode reference engine must agree
        // on every output word, including all-dirty batches and
        // beyond-capacity error weights — for every registry member.
        let mut rng = StdRng::seed_from_u64(0x51_1CED);
        for spec in BchSpec::REGISTRY {
            let code = Bch::from_spec(spec);
            let sliced = BatchCodec::bch_spec(spec);
            let reference = BatchCodec::with_scalar_fallback(&code, code.n());
            let (n, k) = (code.n(), code.k());
            for batch_size in [1usize, 63, 64, 65, 130, 257] {
                let words: Vec<BitVec> = (0..batch_size)
                    .map(|i| {
                        let msg: BitVec = (0..k).map(|_| rng.random::<u64>() & 1 == 1).collect();
                        let mut w = code.encode(&msg);
                        for _ in 0..(i % 5) {
                            let pos = rng.random_range(0..n);
                            w.set(pos, !w.get(pos));
                        }
                        w
                    })
                    .collect();
                let batch = BitSlice64::pack(&words);
                let a = sliced.decode_batch(&batch);
                let b = reference.decode_batch(&batch);
                let label = format!("{spec:?} batch {batch_size}");
                assert_eq!(a.messages, b.messages, "{label}");
                assert_eq!(a.codewords, b.codewords, "{label}");
                assert_eq!(a.flagged, b.flagged, "{label}");
                assert_eq!(a.corrected, b.corrected, "{label}");
            }
        }
    }

    #[test]
    fn bch_registry_codecs_correct_up_to_their_radius() {
        // BCH(63,51) recovers every ≤2-error word; BCH(63,45) every
        // ≤3-error word. Error positions are spread deterministically.
        for (codec, scalar, radius) in [
            (BatchCodec::bch_63_51(), Bch::bch_63_51(), 2usize),
            (BatchCodec::bch_63_45(), Bch::bch_63_45(), 3usize),
        ] {
            assert_eq!((codec.n(), codec.k()), (scalar.n(), scalar.k()));
            assert!(codec.name().contains(scalar.name()));
            let mut rng = StdRng::seed_from_u64(0x63_0000 + radius as u64);
            let messages: Vec<BitVec> = (0..130)
                .map(|_| {
                    (0..scalar.k())
                        .map(|_| rng.random::<u64>() & 1 == 1)
                        .collect()
                })
                .collect();
            let clean = codec.encode_batch(&BitSlice64::pack(&messages));
            for (i, msg) in messages.iter().enumerate() {
                assert_eq!(clean.extract(i), scalar.encode(msg), "word {i}");
            }
            let mut received = clean.clone();
            for i in 0..130 {
                let errors = i % (radius + 1);
                let mut hit = Vec::new();
                while hit.len() < errors {
                    let pos = rng.random_range(0..63usize);
                    if !hit.contains(&pos) {
                        hit.push(pos);
                        received.set(i, pos, !received.get(i, pos));
                    }
                }
            }
            let decoded = codec.decode_batch(&received);
            for (i, message) in messages.iter().enumerate() {
                assert!(!decoded.is_flagged(i), "{} word {i}", codec.name());
                assert_eq!(
                    decoded.is_corrected(i),
                    i % (radius + 1) != 0,
                    "{} word {i}",
                    codec.name()
                );
                assert_eq!(
                    decoded.messages.extract(i),
                    *message,
                    "{} word {i}",
                    codec.name()
                );
            }
        }
    }

    #[test]
    fn ldpc_codec_matches_the_scalar_decoder_bit_for_bit() {
        // The whole-limb bit-flip engine against the scalar synchronous
        // decoder: same messages, same flags, same corrected codewords —
        // over clean, single-error, double-error, and random-noise lanes,
        // at ragged batch sizes.
        let scalar = Ldpc::gallager_60_32();
        let codec = BatchCodec::ldpc();
        assert_eq!((codec.n(), codec.k()), (60, 32));
        let mut rng = StdRng::seed_from_u64(0x1D9C);
        for batch_size in [1usize, 63, 64, 65, 130, 257] {
            let words: Vec<BitVec> = (0..batch_size)
                .map(|i| {
                    let msg: BitVec = (0..32).map(|_| rng.random::<u64>() & 1 == 1).collect();
                    let mut w = scalar.encode(&msg);
                    if i % 7 == 6 {
                        // Dense noise lane: exercises non-convergence.
                        for p in 0..60 {
                            if rng.random::<u64>() & 1 == 1 {
                                w.set(p, !w.get(p));
                            }
                        }
                    } else {
                        for _ in 0..(i % 3) {
                            let pos = rng.random_range(0..60usize);
                            w.set(pos, !w.get(pos));
                        }
                    }
                    w
                })
                .collect();
            let batch = BitSlice64::pack(&words);
            let decoded = codec.decode_batch(&batch);
            for (i, w) in words.iter().enumerate() {
                let reference = scalar.decode(w);
                let label = format!("batch {batch_size} word {i}");
                match reference.outcome {
                    DecodeOutcome::DetectedUncorrectable => {
                        assert!(decoded.is_flagged(i), "{label}");
                        // Flagged lanes deliver the received word unchanged.
                        assert_eq!(decoded.codewords.extract(i), *w, "{label}");
                    }
                    DecodeOutcome::NoErrorDetected => {
                        assert!(!decoded.is_flagged(i), "{label}");
                        assert!(!decoded.is_corrected(i), "{label}");
                        assert_eq!(
                            Some(decoded.messages.extract(i)),
                            reference.message,
                            "{label}"
                        );
                    }
                    DecodeOutcome::Corrected { .. } => {
                        assert!(decoded.is_corrected(i), "{label}");
                        assert_eq!(
                            Some(decoded.codewords.extract(i)),
                            reference.codeword,
                            "{label}"
                        );
                        assert_eq!(
                            Some(decoded.messages.extract(i)),
                            reference.message,
                            "{label}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ldpc_scratch_reuse_is_bit_exact() {
        let codec = BatchCodec::ldpc();
        let mut scratch = BatchScratch::new();
        let mut out = BatchDecoded::empty();
        let mut rng = StdRng::seed_from_u64(0x1D9C_5C8A);
        for batch_size in [3usize, 64, 131] {
            let words: Vec<BitVec> = (0..batch_size)
                .map(|_| {
                    (0..60)
                        .map(|_| rng.random::<u64>() & 1 == 1)
                        .collect::<BitVec>()
                })
                .collect();
            let batch = BitSlice64::pack(&words);
            let reference = codec.decode_batch(&batch);
            codec.decode_batch_with(&batch, &mut scratch, &mut out);
            assert_eq!(out.messages, reference.messages);
            assert_eq!(out.codewords, reference.codewords);
            assert_eq!(out.flagged, reference.flagged);
            assert_eq!(out.corrected, reference.corrected);
        }
    }

    #[test]
    fn forced_kernels_are_bit_identical() {
        // Every kernel override must reproduce the reference scalar walk
        // word-for-word, on dense random noise and ragged batch sizes.
        let builders: [fn() -> BatchCodec; 4] = [
            BatchCodec::hamming74,
            || BatchCodec::sec_ded(6),
            || BatchCodec::repetition(2, 3),
            BatchCodec::wide_hamming_85_64,
        ];
        let mut rng = StdRng::seed_from_u64(0xF0CE);
        for build in builders {
            for batch_size in [1usize, 64, 65, 250] {
                let n = build().n();
                let words: Vec<BitVec> = (0..batch_size)
                    .map(|_| {
                        (0..n)
                            .map(|_| rng.random::<u64>() & 1 == 1)
                            .collect::<BitVec>()
                    })
                    .collect();
                let batch = BitSlice64::pack(&words);
                let reference = build()
                    .with_kernel(KernelKind::ScalarU64)
                    .decode_batch(&batch);
                for kind in [
                    KernelKind::Auto,
                    KernelKind::U128,
                    KernelKind::Wide256,
                    KernelKind::Direct,
                ] {
                    let codec = build().with_kernel(kind);
                    let got = codec.decode_batch(&batch);
                    let label = format!("{} {kind:?} batch {batch_size}", codec.name());
                    assert_eq!(got.messages, reference.messages, "{label}");
                    assert_eq!(got.codewords, reference.codewords, "{label}");
                    assert_eq!(got.flagged, reference.flagged, "{label}");
                    assert_eq!(got.corrected, reference.corrected, "{label}");
                }
            }
        }
    }

    #[test]
    fn kernel_dispatch_names_follow_the_engine_and_override() {
        // r ≤ 4 → direct4; 5 ≤ r ≤ 8 → direct8; r > 8 → width-dispatched
        // walk; algebraic engines carry fixed names. Auto is re-pinned
        // explicitly so the assertions hold even when the CI dispatch
        // matrix exports SFQ_BATCH_KERNEL (which seeds the default).
        let auto = |codec: BatchCodec| codec.with_kernel(KernelKind::Auto);
        assert_eq!(
            auto(BatchCodec::hamming74()).selected_kernel_name(4096),
            "direct4"
        );
        assert_eq!(
            auto(BatchCodec::sec_ded(6)).selected_kernel_name(4096),
            "direct8"
        );
        let wide = auto(BatchCodec::wide_hamming_85_64()).selected_kernel_name(4096);
        assert!(wide == "walk-w256" || wide == "walk-u128", "got {wide}");
        assert_eq!(
            auto(BatchCodec::wide_hamming_85_64()).selected_kernel_name(64),
            "walk-u64"
        );
        assert_eq!(BatchCodec::bch().selected_kernel_name(4096), "sliced");
        assert_eq!(BatchCodec::bch_63_51().selected_kernel_name(4096), "sliced");
        assert_eq!(BatchCodec::ldpc().selected_kernel_name(4096), "bit-flip");
        assert_eq!(
            BatchCodec::with_scalar_fallback(&Bch::bch_31_16(), 31).selected_kernel_name(64),
            "scalar-fallback"
        );
        assert_eq!(
            BatchCodec::hamming74()
                .with_kernel(KernelKind::ScalarU64)
                .selected_kernel_name(4096),
            "walk-u64"
        );
    }

    #[test]
    fn wide_hamming_85_64_roundtrips_beyond_the_old_redundancy_limit() {
        // n - k = 21 > 20: impossible under the old syndrome-action table
        // (its 2^21-entry build was rejected); the column-matching engine
        // compiles 85 entries and decodes exactly like the scalar path.
        let scalar = ShortenedHamming::wide_85_64();
        let codec = BatchCodec::wide_hamming_85_64();
        assert_eq!((codec.n(), codec.k()), (85, 64));
        let mut rng = StdRng::seed_from_u64(0x8564);
        let messages: Vec<BitVec> = (0..100)
            .map(|_| BitVec::from_u64(64, rng.random::<u64>()))
            .collect();
        let clean = codec.encode_batch(&BitSlice64::pack(&messages));
        let decoded = codec.decode_batch(&clean);
        assert_eq!(decoded.flagged_count(), 0);
        assert_eq!(decoded.messages.unpack(), messages);

        // Single errors are corrected; a parity-pair double is flagged by
        // both paths.
        let mut received = clean.clone();
        for i in 0..100 {
            let pos = rng.random_range(0..85usize);
            received.set(i, pos, !received.get(i, pos));
        }
        let decoded = codec.decode_batch(&received);
        for (i, m) in messages.iter().enumerate() {
            let scalar_decoded = scalar.decode(&received.extract(i));
            assert_eq!(Some(decoded.messages.extract(i)), scalar_decoded.message);
            assert_eq!(decoded.messages.extract(i), *m, "msg {i}");
        }
    }
}
