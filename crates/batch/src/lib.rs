//! # sfq-batch — bit-sliced batch codec engine
//!
//! Scalar encode/decode of the paper's short block codes spends its time in
//! per-message loops over 4–8 bits: one `BitVec` allocation and one
//! matrix-vector product per message. For the workloads this workspace cares
//! about — exhaustive Table I sweeps and Fig. 5 Monte-Carlo runs over
//! thousands of chips × hundreds of messages — the same operations can be
//! performed on 64 messages at once by storing the batch *transposed*
//! ([`gf2::BitSlice64`]): one `u64`-limb lane per bit position, message `i`
//! at bit `i % 64` of limb `i / 64`. Encoding a lane is then a handful of
//! XORs; the whole batch path touches no per-message state at all. The same
//! word-level parallelism powers the massively parallel syndrome processing
//! units of superconducting QEC decoders (QECOOL, NEO-QEC), applied here to
//! classical link codes.
//!
//! ## How decoding becomes branch-free: column matching
//!
//! [`BatchCodec`] is built from any scalar [`BlockCode`] + [`HardDecoder`]
//! whose hard decisions are **coset-invariant**: the correction applied to a
//! received word depends only on its syndrome. Construction compiles the
//! decoder into a [`ColumnMatchProgram`]: a list of `(syndrome pattern,
//! flip mask)` entries covering exactly the *correctable* syndromes. Batch
//! decoding computes the `r = n − k` syndrome bit-slices, and per 64-message
//! limb:
//!
//! * a limb whose syndromes are all zero (the dominant case in Monte-Carlo
//!   traffic) skips matching entirely;
//! * the `2^min(4,r)` syndrome-*prefix* masks are built once per limb (one
//!   shared AND-tree by successive halving, partitioning the lanes), and
//!   the all-zero prefix mask yields the clean-word mask;
//! * each entry starts from its prefix bucket's mask and matches only its
//!   remaining high bits — an XNOR-AND-tree over the suffix slices
//!   ([`gf2::and_xnor_reduce`]) — then XORs its flip mask into the matching
//!   positions; matched lanes retire, and buckets with no lanes in play
//!   skip all of their entries;
//! * everything that is neither clean nor matched raises the error flag —
//!   detected-uncorrectable syndromes are handled *by complement* and cost
//!   nothing.
//!
//! How the program is built depends on the scalar decoder's declared
//! [`SyndromeClass`]:
//!
//! * [`SyndromeClass::ColumnFlip`] decoders (every Hamming/SEC-DED-style
//!   decoder in `ecc`, and the tie-detecting RM(1,3) decoder) are compiled
//!   **directly from the columns of `H`** — one entry per codeword position,
//!   verified with one scalar probe per position. Construction is `O(n · r)`
//!   and per-limb decode is `O(n · r)` bit-ops, independent of `2^r`, which
//!   is what lets the engine serve codes with redundancy far beyond the old
//!   20-bit action-table limit (e.g. the catalog's Shortened Hamming(85,64)
//!   with `r = 21`).
//! * [`SyndromeClass::General`] decoders (e.g. majority-vote repetition) are
//!   interrogated once per syndrome value, exactly like the old
//!   syndrome-action table — still exact, but only tractable for small `r`.
//! * [`SyndromeClass::Algebraic`] decoders (multi-error BCH) have far too
//!   many correctable syndromes to tabulate (`Σ C(n,i)` for `i ≤ t`).
//!   [`BatchCodec::with_scalar_fallback`] keeps the bit-sliced syndrome
//!   accumulation and the clean-limb short-circuit, then runs the **scalar
//!   algebraic decoder only on the dirty lanes** — under Monte-Carlo traffic
//!   almost every limb is clean, so the expected cost per limb stays at the
//!   XOR syndrome cost. Locator-evaluation work is metered by the
//!   `batch.bch.*` counters.
//!
//! Bit-exactness with the scalar path is enforced by the workspace's
//! exhaustive equivalence tests, and the RM(1,3) tie-break policy note
//! applies unchanged: the batch engine tabulates the tie-*detecting*
//! decoder (`decode`), not `decode_best_effort`.
//!
//! ## Allocation-free hot path
//!
//! Every batch operation has a buffer-reusing twin ([`BatchEncode::
//! encode_batch_into`], [`BatchDecode::decode_batch_with`]) threaded through
//! an [`ecc::BatchScratch`]; the Monte-Carlo drivers in `cryolink` keep one
//! scratch per worker thread so the steady-state inner loop never touches
//! the allocator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ecc::{
    generator_right_inverse, BatchDecode, BatchDecoded, BatchEncode, BatchScratch, Bch, BlockCode,
    DecodeOutcome, Decoded, Hamming74, Hamming84, HardDecoder, Repetition, Rm13, SecDed,
    ShortenedHamming, SyndromeClass, Uncoded,
};
use gf2::{and_xnor_reduce, or_reduce, BitMat, BitSlice64, BitVec};
use std::sync::Arc;

/// Largest supported codeword length: syndrome patterns, column supports,
/// and flip masks are single `u128`s. This is the batch engine's only size
/// limit — the redundancy `n - k` is unconstrained.
pub const MAX_BLOCK_LENGTH: usize = 128;

/// One compiled decode rule: when a word's syndrome equals `pattern`, XOR
/// `flip` into it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MatchEntry {
    /// Syndrome value (bit `t` = syndrome lane `t`). Never zero — the zero
    /// syndrome always means "accept" and is handled separately.
    pattern: u128,
    /// Error pattern to XOR into the received word (bit `p` = codeword
    /// position `p`). Never zero — a nonzero syndrome's correction flips at
    /// least one bit.
    flip: u128,
}

/// The compiled decoder: match entries for every *correctable* syndrome.
/// The zero syndrome accepts, and any other unmatched syndrome is
/// detected-uncorrectable by complement.
///
/// Entries are bucketed by the low [`ColumnMatchProgram::prefix_bits`] bits
/// of their pattern. The decode kernel builds all `2^prefix_bits`
/// prefix-match masks of a limb once (a shared AND-tree instead of
/// per-entry re-computation), then each entry only matches its bucket's
/// remaining high bits — and whole buckets with no matching lanes are
/// skipped without touching their entries, which is the common case for
/// sparse-error Monte-Carlo traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ColumnMatchProgram {
    /// Number of low syndrome bits used as the bucket index
    /// (`min(4, n - k)`, so the kernel's mask table fits a fixed array).
    prefix_bits: usize,
    /// Entries sorted by the low `prefix_bits` of their pattern.
    entries: Vec<MatchEntry>,
    /// `(prefix value, start, end)` ranges into `entries` — **non-empty
    /// buckets only**, so the kernel never branches over prefix values no
    /// entry uses.
    buckets: Vec<(u8, u32, u32)>,
}

/// Upper bound of the per-limb prefix-mask table (`2^4`).
const PREFIX_SLOTS: usize = 16;

/// The scalar-fallback decode engine for [`SyndromeClass::Algebraic`]
/// decoders: limbs are screened with the bit-sliced syndrome OR-reduce, and
/// only *dirty* lanes are unpacked and handed to the owned scalar decoder.
#[derive(Clone)]
struct AlgebraicFallback {
    /// The owned scalar decoder, type-erased.
    decode: Arc<dyn Fn(&BitVec) -> Decoded + Send + Sync>,
    /// Locator evaluations one scalar decode of a dirty word performs
    /// (e.g. `n` Chien-search points for BCH); used for work metering only.
    locator_evals_per_word: u64,
    /// `batch.bch.*` telemetry handles.
    metrics: AlgebraicMetrics,
}

impl std::fmt::Debug for AlgebraicFallback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlgebraicFallback")
            .field("locator_evals_per_word", &self.locator_evals_per_word)
            .finish_non_exhaustive()
    }
}

/// How a [`BatchCodec`] turns syndromes into corrections.
#[derive(Debug, Clone)]
enum DecodeEngine {
    /// The compiled column-matching program (`ColumnFlip` / `General`).
    ColumnMatch(ColumnMatchProgram),
    /// Bit-sliced syndrome screen + scalar decode of dirty lanes
    /// (`Algebraic`).
    ScalarFallback(AlgebraicFallback),
}

/// Telemetry handles of the algebraic fallback path, registered under the
/// `batch.bch.*` names (see `docs/OBSERVABILITY.md`). Like
/// [`DecodeMetrics`], the kernel accumulates into locals and flushes once
/// per decode call.
#[derive(Debug, Clone)]
struct AlgebraicMetrics {
    /// Lanes whose syndrome was nonzero (each costs one scalar decode).
    dirty_lanes: sfq_telemetry::Counter,
    /// Dirty lanes the scalar decoder corrected.
    fallback_corrected: sfq_telemetry::Counter,
    /// Dirty lanes the scalar decoder flagged detected-uncorrectable.
    fallback_flagged: sfq_telemetry::Counter,
    /// Error-locator evaluations performed (Chien-search points).
    locator_evals: sfq_telemetry::Counter,
}

impl AlgebraicMetrics {
    fn new() -> Self {
        let registry = sfq_telemetry::global();
        AlgebraicMetrics {
            dirty_lanes: registry.counter("batch.bch.dirty_lanes"),
            fallback_corrected: registry.counter("batch.bch.fallback_corrected"),
            fallback_flagged: registry.counter("batch.bch.fallback_flagged"),
            locator_evals: registry.counter("batch.bch.locator_evals"),
        }
    }
}

/// Decode-kernel telemetry handles, registered once per codec under the
/// `batch.decode.*` names (each codec is a shard of the global registry;
/// see `docs/OBSERVABILITY.md`). The kernel accumulates into plain locals
/// and flushes once per [`BatchCodec::decode_batch_with`] call, so the
/// per-limb loop sees no atomics. With the `telemetry` feature off these
/// handles are zero-sized no-ops.
#[derive(Debug, Clone)]
struct DecodeMetrics {
    /// Decode calls (one per batch).
    calls: sfq_telemetry::Counter,
    /// 64-lane limbs processed.
    limbs: sfq_telemetry::Counter,
    /// Limbs whose syndromes were all zero (short-circuited past matching).
    clean_limbs: sfq_telemetry::Counter,
    /// Prefix buckets entered with at least one lane in play.
    buckets_visited: sfq_telemetry::Counter,
    /// Prefix buckets skipped because no lane carried their prefix.
    buckets_skipped: sfq_telemetry::Counter,
    /// Match entries tested against a limb.
    entries_tested: sfq_telemetry::Counter,
    /// Lanes corrected (retired by a match).
    lanes_matched: sfq_telemetry::Counter,
    /// Lanes flagged detected-uncorrectable.
    lanes_flagged: sfq_telemetry::Counter,
}

impl DecodeMetrics {
    fn new() -> Self {
        let registry = sfq_telemetry::global();
        DecodeMetrics {
            calls: registry.counter("batch.decode.calls"),
            limbs: registry.counter("batch.decode.limbs"),
            clean_limbs: registry.counter("batch.decode.clean_limbs"),
            buckets_visited: registry.counter("batch.decode.buckets_visited"),
            buckets_skipped: registry.counter("batch.decode.buckets_skipped"),
            entries_tested: registry.counter("batch.decode.entries_tested"),
            lanes_matched: registry.counter("batch.decode.lanes_matched"),
            lanes_flagged: registry.counter("batch.decode.lanes_flagged"),
        }
    }
}

impl ColumnMatchProgram {
    /// Buckets a finished entry list by syndrome prefix.
    fn new(mut entries: Vec<MatchEntry>, redundancy: usize) -> Self {
        let prefix_bits = redundancy.min(4);
        debug_assert!(1 << prefix_bits <= PREFIX_SLOTS);
        let prefix_mask = (1u128 << prefix_bits) - 1;
        entries.sort_by_key(|e| e.pattern & prefix_mask);
        let mut buckets = Vec::new();
        let mut start = 0usize;
        while start < entries.len() {
            let prefix = entries[start].pattern & prefix_mask;
            let end = start
                + entries[start..]
                    .iter()
                    .take_while(|e| e.pattern & prefix_mask == prefix)
                    .count();
            buckets.push((prefix as u8, start as u32, end as u32));
            start = end;
        }
        ColumnMatchProgram {
            prefix_bits,
            entries,
            buckets,
        }
    }
}

/// A bit-sliced batch encoder/decoder for one short block code.
///
/// Precomputes, from the scalar code:
///
/// * the generator's column supports (for lane encoding),
/// * the parity-check rows (for lane syndromes),
/// * the per-code [`ColumnMatchProgram`] (for lane decoding),
/// * the pivot/transform pair of [`generator_right_inverse`] (for lane
///   message extraction).
///
/// All masks are single `u128`s, so the code must satisfy `n ≤`
/// [`MAX_BLOCK_LENGTH`]; there is no constraint on the redundancy.
#[derive(Debug, Clone)]
pub struct BatchCodec {
    name: String,
    n: usize,
    k: usize,
    /// `encode_masks[j]`: support of generator column `j` over message bits.
    encode_masks: Vec<u128>,
    /// `syndrome_masks[t]`: support of parity-check row `t` over codeword bits.
    syndrome_masks: Vec<u128>,
    /// The decode engine: a compiled column-matching program, or the
    /// scalar-fallback screen for algebraic decoders.
    engine: DecodeEngine,
    /// `extract_masks[j]`: support over codeword bits whose parity is message
    /// bit `j` (from the generator's right inverse).
    extract_masks: Vec<u128>,
    /// Decode-kernel telemetry (write-only; never affects results).
    metrics: DecodeMetrics,
}

impl BatchCodec {
    /// Builds the batch engine for a scalar code + hard decoder.
    ///
    /// The decoder's [`HardDecoder::syndrome_class`] selects the program
    /// builder: `ColumnFlip` decoders compile straight from the columns of
    /// `H` (no syndrome-space enumeration, so the redundancy is unlimited);
    /// `General` decoders are interrogated once per syndrome value.
    ///
    /// # Panics
    /// Panics if the code exceeds `n ≤ 128` (masks are single `u128`s), if
    /// the parity-check matrix does not have full row rank, if a
    /// `ColumnFlip` decoder fails its per-column scalar probe, or if the
    /// decoder declares [`SyndromeClass::Algebraic`] (those codecs own their
    /// scalar decoder — build them with
    /// [`BatchCodec::with_scalar_fallback`]).
    #[must_use]
    pub fn new<C: BlockCode + HardDecoder>(code: &C) -> Self {
        let engine = |code: &C, redundancy: usize| {
            let entries = if redundancy == 0 {
                // No parity: every word is a codeword, nothing to correct or
                // detect.
                Vec::new()
            } else {
                match code.syndrome_class() {
                    SyndromeClass::ColumnFlip => column_flip_entries(code),
                    SyndromeClass::General => interrogated_entries(code),
                    SyndromeClass::Algebraic => panic!(
                        "{}: algebraic decoders keep a scalar fallback; \
                         build with BatchCodec::with_scalar_fallback",
                        code.name()
                    ),
                }
            };
            DecodeEngine::ColumnMatch(ColumnMatchProgram::new(entries, redundancy))
        };
        Self::build(code, engine)
    }

    /// Builds the batch engine for a [`SyndromeClass::Algebraic`] decoder:
    /// bit-sliced syndrome accumulation with the clean-limb short-circuit,
    /// plus an owned clone of the scalar decoder that is invoked **per dirty
    /// lane only**. `locator_evals_per_word` meters the locator-evaluation
    /// work one scalar decode performs (`batch.bch.locator_evals`).
    ///
    /// # Panics
    /// Panics under the same size/rank conditions as [`BatchCodec::new`].
    #[must_use]
    pub fn with_scalar_fallback<C>(code: &C, locator_evals_per_word: usize) -> Self
    where
        C: BlockCode + HardDecoder + Clone + Send + Sync + 'static,
    {
        let engine = |code: &C, _redundancy: usize| {
            let owned = code.clone();
            DecodeEngine::ScalarFallback(AlgebraicFallback {
                decode: Arc::new(move |word: &BitVec| owned.decode(word)),
                locator_evals_per_word: locator_evals_per_word as u64,
                metrics: AlgebraicMetrics::new(),
            })
        };
        Self::build(code, engine)
    }

    /// Shared constructor body: masks, extraction lanes, and the engine.
    fn build<C: BlockCode + HardDecoder>(
        code: &C,
        engine: impl FnOnce(&C, usize) -> DecodeEngine,
    ) -> Self {
        let (n, k) = (code.n(), code.k());
        assert!(
            n <= MAX_BLOCK_LENGTH,
            "batch codec masks are u128: n <= {MAX_BLOCK_LENGTH} (got {n})"
        );
        assert!(k <= n, "k must not exceed n");
        let redundancy = n - k;

        let g = code.generator();
        let encode_masks: Vec<u128> = (0..n).map(|j| column_mask(g, j)).collect();

        let h = code.parity_check();
        let syndrome_masks: Vec<u128> = (0..redundancy).map(|t| row_mask(h, t)).collect();

        let engine = engine(code, redundancy);

        let (pivots, transform) = generator_right_inverse(g);
        let extract_masks: Vec<u128> = (0..k)
            .map(|j| {
                pivots
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| transform.get(i, j))
                    .fold(0u128, |mask, (_, &p)| mask | (1u128 << p))
            })
            .collect();

        BatchCodec {
            name: format!("batch[{}]", code.name()),
            n,
            k,
            encode_masks,
            syndrome_masks,
            engine,
            extract_masks,
            metrics: DecodeMetrics::new(),
        }
    }

    /// Batch engine for the Hamming(7,4) code.
    #[must_use]
    pub fn hamming74() -> Self {
        Self::new(&Hamming74::new())
    }

    /// Batch engine for the extended Hamming(8,4) code.
    #[must_use]
    pub fn hamming84() -> Self {
        Self::new(&Hamming84::new())
    }

    /// Batch engine for the RM(1,3) code (tie-detecting decoder).
    #[must_use]
    pub fn rm13() -> Self {
        Self::new(&Rm13::new())
    }

    /// Batch engine for a repetition code.
    #[must_use]
    pub fn repetition(k: usize, factor: usize) -> Self {
        Self::new(&Repetition::new(k, factor))
    }

    /// Batch engine for uncoded transmission.
    #[must_use]
    pub fn uncoded(k: usize) -> Self {
        Self::new(&Uncoded::new(k))
    }

    /// Batch engine for the SEC-DED family member with `2^m` data bits
    /// (`m = 6` is the wide (72,64) code).
    #[must_use]
    pub fn sec_ded(m: usize) -> Self {
        Self::new(&SecDed::new(m))
    }

    /// Batch engine for the wide Shortened Hamming(85,64) demonstration code
    /// — 21 syndrome lanes, beyond any tabulable syndrome space.
    #[must_use]
    pub fn wide_hamming_85_64() -> Self {
        Self::new(&ShortenedHamming::wide_85_64())
    }

    /// Batch engine for the multi-error BCH(31,16) code (`t = 2`,
    /// `d_min = 7`): bit-sliced syndrome screen, scalar
    /// Berlekamp–Massey/Chien fallback on dirty lanes only.
    #[must_use]
    pub fn bch() -> Self {
        let code = Bch::bch_31_16();
        let evals = code.locator_evaluations_per_word();
        Self::with_scalar_fallback(&code, evals)
    }

    /// Human-readable name, derived from the scalar code's.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of compiled match entries (one per correctable syndrome).
    /// Scalar-fallback engines compile no entries and report zero.
    #[must_use]
    pub fn program_len(&self) -> usize {
        match &self.engine {
            DecodeEngine::ColumnMatch(program) => program.entries.len(),
            DecodeEngine::ScalarFallback(_) => 0,
        }
    }

    /// The column-matching decode kernel: one pass over the limbs, matching
    /// each against the compiled program.
    fn run_program(
        &self,
        program: &ColumnMatchProgram,
        received: &BitSlice64,
        scratch: &mut BatchScratch,
        out: &mut BatchDecoded,
    ) {
        let redundancy = self.syndrome_masks.len();
        let words = received.words();
        let tail = received.tail_mask();
        let prefix_bits = program.prefix_bits;

        self.syndrome_batch_into(received, &mut scratch.syndromes);
        if scratch.gather.len() < redundancy {
            scratch.gather.resize(redundancy, 0);
        }

        out.codewords.copy_from(received);
        out.flagged.clear();
        out.flagged.resize(words, 0);
        out.corrected.clear();
        out.corrected.resize(words, 0);

        // Telemetry accumulates in locals and flushes once per call, so the
        // limb loop itself performs no atomic operations.
        let mut clean_limbs = 0u64;
        let mut buckets_visited = 0u64;
        let mut buckets_skipped = 0u64;
        let mut entries_tested = 0u64;
        let mut lanes_matched = 0u64;
        let mut lanes_flagged = 0u64;

        for w in 0..words {
            let valid = if w + 1 == words { tail } else { u64::MAX };
            let gather = &mut scratch.gather[..redundancy];
            scratch.syndromes.gather_word(w, gather);

            // Fast path: a limb of all-zero syndromes (the common case for
            // healthy chips over a clean channel) needs no matching at all.
            if or_reduce(gather) == 0 {
                clean_limbs += 1;
                continue;
            }

            // One shared AND-tree instead of per-entry prefix re-matching:
            // masks[v] = lanes whose low `prefix_bits` syndrome bits equal
            // `v`, built by successive halving into a fixed local table.
            // The masks partition `valid`.
            let mut masks = [0u64; PREFIX_SLOTS];
            masks[0] = valid;
            for (t, &slice) in gather.iter().take(prefix_bits).enumerate() {
                let width = 1usize << t;
                for i in 0..width {
                    let m = masks[i];
                    masks[i | width] = m & slice;
                    masks[i] = m & !slice;
                }
            }
            let suffix = &gather[prefix_bits..];

            // Positions whose whole syndrome is zero: accepted as-is.
            let clean = and_xnor_reduce(masks[0], suffix, 0);
            let mut matched = 0u64;
            for &(b, start, end) in &program.buckets {
                // Lanes still in play for this bucket; matched lanes retire
                // (patterns are distinct, so each lane matches at most one
                // entry), and a lane-less bucket skips its entries outright.
                let mut base = masks[b as usize];
                if b == 0 {
                    base &= !clean;
                }
                if base == 0 {
                    buckets_skipped += 1;
                    continue;
                }
                buckets_visited += 1;
                for entry in &program.entries[start as usize..end as usize] {
                    entries_tested += 1;
                    let m = and_xnor_reduce(base, suffix, entry.pattern >> prefix_bits);
                    if m == 0 {
                        continue;
                    }
                    matched |= m;
                    base &= !m;
                    let mut flip = entry.flip;
                    while flip != 0 {
                        let p = flip.trailing_zeros() as usize;
                        out.codewords.lane_mut(p)[w] ^= m;
                        flip &= flip - 1;
                    }
                    if base == 0 {
                        break;
                    }
                }
            }
            out.corrected[w] = matched;
            out.flagged[w] = valid & !clean & !matched;
            lanes_matched += u64::from(matched.count_ones());
            lanes_flagged += u64::from(out.flagged[w].count_ones());
        }

        self.metrics.calls.inc();
        self.metrics.limbs.add(words as u64);
        self.metrics.clean_limbs.add(clean_limbs);
        self.metrics.buckets_visited.add(buckets_visited);
        self.metrics.buckets_skipped.add(buckets_skipped);
        self.metrics.entries_tested.add(entries_tested);
        self.metrics.lanes_matched.add(lanes_matched);
        self.metrics.lanes_flagged.add(lanes_flagged);

        self.extract_message_lanes(received.batch(), out);
    }

    /// The scalar-fallback decode kernel for algebraic decoders: bit-sliced
    /// syndrome accumulation screens the limbs exactly like the
    /// column-matching kernel (same clean-limb short-circuit), and each
    /// dirty lane — syndrome nonzero — is unpacked and decoded by the owned
    /// scalar decoder, whose corrected codeword (or error flag) is written
    /// back into the lane. Only dirty lanes ever allocate.
    fn run_fallback(
        &self,
        fallback: &AlgebraicFallback,
        received: &BitSlice64,
        scratch: &mut BatchScratch,
        out: &mut BatchDecoded,
    ) {
        let redundancy = self.syndrome_masks.len();
        let words = received.words();
        let tail = received.tail_mask();

        self.syndrome_batch_into(received, &mut scratch.syndromes);
        if scratch.gather.len() < redundancy {
            scratch.gather.resize(redundancy, 0);
        }

        out.codewords.copy_from(received);
        out.flagged.clear();
        out.flagged.resize(words, 0);
        out.corrected.clear();
        out.corrected.resize(words, 0);

        // Telemetry in locals, flushed once per call (no atomics per limb).
        let mut clean_limbs = 0u64;
        let mut dirty_lanes = 0u64;
        let mut fallback_corrected = 0u64;
        let mut fallback_flagged = 0u64;
        let mut lanes_flagged = 0u64;
        let mut lanes_matched = 0u64;

        for w in 0..words {
            let valid = if w + 1 == words { tail } else { u64::MAX };
            let gather = &mut scratch.gather[..redundancy];
            scratch.syndromes.gather_word(w, gather);

            // Clean-limb short-circuit, identical to the column-matching
            // kernel: all-zero syndromes need no per-lane work at all.
            let mut dirty = or_reduce(gather) & valid;
            if dirty == 0 {
                clean_limbs += 1;
                continue;
            }

            while dirty != 0 {
                let bit = dirty & dirty.wrapping_neg();
                let lane = w * 64 + bit.trailing_zeros() as usize;
                dirty &= dirty - 1;
                dirty_lanes += 1;

                let word = received.extract(lane);
                let decoded = (fallback.decode)(&word);
                match decoded.outcome {
                    DecodeOutcome::DetectedUncorrectable => {
                        out.flagged[w] |= bit;
                        fallback_flagged += 1;
                    }
                    _ => {
                        let codeword = decoded
                            .codeword
                            .expect("non-detected decode must produce a codeword");
                        for p in 0..self.n {
                            if codeword.get(p) != word.get(p) {
                                out.codewords.lane_mut(p)[w] ^= bit;
                            }
                        }
                        out.corrected[w] |= bit;
                        fallback_corrected += 1;
                    }
                }
            }
            lanes_matched += u64::from(out.corrected[w].count_ones());
            lanes_flagged += u64::from(out.flagged[w].count_ones());
        }

        self.metrics.calls.inc();
        self.metrics.limbs.add(words as u64);
        self.metrics.clean_limbs.add(clean_limbs);
        self.metrics.lanes_matched.add(lanes_matched);
        self.metrics.lanes_flagged.add(lanes_flagged);
        fallback.metrics.dirty_lanes.add(dirty_lanes);
        fallback.metrics.fallback_corrected.add(fallback_corrected);
        fallback.metrics.fallback_flagged.add(fallback_flagged);
        fallback
            .metrics
            .locator_evals
            .add(dirty_lanes * fallback.locator_evals_per_word);

        self.extract_message_lanes(received.batch(), out);
    }

    /// Message lanes: parity of the extraction support over the corrected
    /// codeword lanes, masked out at flagged positions.
    fn extract_message_lanes(&self, batch: usize, out: &mut BatchDecoded) {
        out.messages.reset(self.k, batch);
        for (j, &mask) in self.extract_masks.iter().enumerate() {
            let mut m = mask;
            while m != 0 {
                let p = m.trailing_zeros() as usize;
                out.messages.xor_lane_from(j, &out.codewords, p);
                m &= m - 1;
            }
            let lane = out.messages.lane_mut(j);
            for (l, &f) in lane.iter_mut().zip(out.flagged.iter()) {
                *l &= !f;
            }
        }
    }
}

impl BatchEncode for BatchCodec {
    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn encode_batch(&self, messages: &BitSlice64) -> BitSlice64 {
        let mut out = BitSlice64::default();
        self.encode_batch_into(messages, &mut out);
        out
    }

    fn encode_batch_into(&self, messages: &BitSlice64, codewords: &mut BitSlice64) {
        assert_eq!(messages.bits(), self.k, "message lanes must equal k");
        codewords.reset(self.n, messages.batch());
        for (j, &mask) in self.encode_masks.iter().enumerate() {
            let mut m = mask;
            while m != 0 {
                let i = m.trailing_zeros() as usize;
                codewords.xor_lane_from(j, messages, i);
                m &= m - 1;
            }
        }
    }
}

impl BatchDecode for BatchCodec {
    fn syndrome_batch(&self, received: &BitSlice64) -> BitSlice64 {
        let mut out = BitSlice64::default();
        self.syndrome_batch_into(received, &mut out);
        out
    }

    fn syndrome_batch_into(&self, received: &BitSlice64, syndromes: &mut BitSlice64) {
        assert_eq!(received.bits(), self.n, "received lanes must equal n");
        syndromes.reset(self.syndrome_masks.len(), received.batch());
        for (t, &mask) in self.syndrome_masks.iter().enumerate() {
            let mut m = mask;
            while m != 0 {
                let p = m.trailing_zeros() as usize;
                syndromes.xor_lane_from(t, received, p);
                m &= m - 1;
            }
        }
    }

    fn decode_batch(&self, received: &BitSlice64) -> BatchDecoded {
        let mut scratch = BatchScratch::new();
        let mut out = BatchDecoded::empty();
        self.decode_batch_with(received, &mut scratch, &mut out);
        out
    }

    fn decode_batch_with(
        &self,
        received: &BitSlice64,
        scratch: &mut BatchScratch,
        out: &mut BatchDecoded,
    ) {
        assert_eq!(received.bits(), self.n, "received lanes must equal n");
        match &self.engine {
            DecodeEngine::ColumnMatch(program) => {
                self.run_program(program, received, scratch, out);
            }
            DecodeEngine::ScalarFallback(fallback) => {
                self.run_fallback(fallback, received, scratch, out);
            }
        }
    }
}

/// Support of generator column `j` as a mask over message-bit indices.
fn column_mask(g: &BitMat, j: usize) -> u128 {
    (0..g.rows()).fold(0u128, |mask, i| {
        if g.get(i, j) {
            mask | (1u128 << i)
        } else {
            mask
        }
    })
}

/// Support of parity-check row `t` as a mask over codeword positions.
fn row_mask(h: &BitMat, t: usize) -> u128 {
    (0..h.cols()).fold(0u128, |mask, p| {
        if h.get(t, p) {
            mask | (1u128 << p)
        } else {
            mask
        }
    })
}

/// Compiles a [`SyndromeClass::ColumnFlip`] decoder straight from the
/// parity-check matrix: one entry per codeword position, matching the
/// position's column and flipping that single bit. Detected syndromes are
/// the complement and need no entries.
///
/// Construction cost is `O(n · r)` plus one scalar probe per position — the
/// probe re-verifies the declared class against the actual decoder, so a
/// code that wrongly claims `ColumnFlip` fails loudly here rather than
/// producing a silently divergent batch engine.
///
/// # Panics
/// Panics if `H` has a zero or duplicated column (the class needs
/// `d_min ≥ 3`), or if the scalar decoder's response to a single-bit error
/// is not "flip exactly that bit".
fn column_flip_entries<C: BlockCode + HardDecoder>(code: &C) -> Vec<MatchEntry> {
    let n = code.n();
    let h = code.parity_check();
    let mut entries: Vec<MatchEntry> = Vec::with_capacity(n);
    for j in 0..n {
        let pattern = h.col(j).to_u128();
        assert_ne!(pattern, 0, "H column {j} is zero: not a ColumnFlip code");
        assert!(
            entries.iter().all(|e| e.pattern != pattern),
            "H column {j} duplicates another column: not a ColumnFlip code"
        );
        // Probe: the scalar decoder must answer a single-bit error at `j`
        // by flipping exactly `j` (i.e. decode e_j back to the zero word).
        let mut e_j = BitVec::zeros(n);
        e_j.set(j, true);
        let decoded = code.decode(&e_j);
        let corrected_to_zero = decoded
            .codeword
            .as_ref()
            .is_some_and(|cw| cw.is_zero() && decoded.outcome.corrected());
        assert!(
            corrected_to_zero,
            "{}: scalar decoder does not flip position {j} on syndrome H[:,{j}] — \
             the decoder is not SyndromeClass::ColumnFlip",
            code.name()
        );
        entries.push(MatchEntry {
            pattern,
            flip: 1u128 << j,
        });
    }
    entries
}

/// Compiles a [`SyndromeClass::General`] decoder by interrogating it once
/// per syndrome value and recording an entry for every syndrome it corrects
/// (detected syndromes are the complement and need no entries).
///
/// For each syndrome `s`, a representative received word with that syndrome
/// is constructed from the row-reduced parity-check matrix: row-reducing
/// `[H | I_{n-k}]` gives `[R | T]` with `R = T·H` and pivot columns `p_i`;
/// the word `r = Σ_i (T·s)_i · e_{p_i}` satisfies `H·r = s`. The decoder's
/// response to `r` — flip pattern or error flag — is the action for every
/// word in that coset.
///
/// # Panics
/// Panics if `H` does not have full row rank, or if the redundancy exceeds
/// 28 — this builder enumerates all `2^(n-k)` syndromes, which is a property
/// of general coset decoders, not of the batch engine; wide-redundancy codes
/// must provide a [`SyndromeClass::ColumnFlip`] decoder instead.
fn interrogated_entries<C: BlockCode + HardDecoder>(code: &C) -> Vec<MatchEntry> {
    let n = code.n();
    let redundancy = n - code.k();
    assert!(
        redundancy <= 28,
        "{}: general-class decoders are compiled by enumerating all 2^(n-k) syndromes, \
         which is impractical at n-k = {redundancy}; implement SyndromeClass::ColumnFlip \
         (or another structural class) for this decoder",
        code.name()
    );
    let table_len = 1u64 << redundancy;

    let h = code.parity_check();
    let augmented = h.hconcat(&BitMat::identity(redundancy));
    let (reduced, pivots) = augmented.rref();
    assert_eq!(pivots.len(), redundancy, "H must have full row rank");
    assert!(
        pivots.iter().all(|&p| p < n),
        "H pivots must be data columns"
    );
    // Row `i` of the transform `T`, as a BitVec for the dot products below.
    let t_rows: Vec<BitVec> = (0..redundancy)
        .map(|i| (0..redundancy).map(|t| reduced.get(i, n + t)).collect())
        .collect();

    let mut entries = Vec::new();
    for s in 1..table_len {
        let syndrome = BitVec::from_u64(redundancy, s);
        // a = T · s, then r = Σ a_i e_{p_i}.
        let mut representative = BitVec::zeros(n);
        for (i, &p) in pivots.iter().enumerate() {
            if t_rows[i].dot(&syndrome) {
                representative.set(p, true);
            }
        }
        debug_assert_eq!(code.syndrome(&representative), syndrome);

        let decoded = code.decode(&representative);
        match decoded.outcome {
            DecodeOutcome::DetectedUncorrectable => {} // handled by complement
            _ => {
                let codeword = decoded
                    .codeword
                    .expect("non-detected decode must produce a codeword");
                let flip = (&representative ^ &codeword).to_u128();
                debug_assert_ne!(flip, 0, "nonzero syndrome must flip something");
                entries.push(MatchEntry {
                    pattern: u128::from(s),
                    flip,
                });
            }
        }
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_messages(k: usize, batch: usize, seed: u64) -> Vec<BitVec> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..batch)
            .map(|_| BitVec::from_u64(k, rng.random_range(0..(1u64 << k))))
            .collect()
    }

    #[test]
    fn encode_batch_matches_scalar_for_all_paper_codes() {
        type ScalarEncode = Box<dyn Fn(&BitVec) -> BitVec>;
        let cases: Vec<(BatchCodec, ScalarEncode)> = vec![
            (BatchCodec::hamming74(), {
                let c = Hamming74::new();
                Box::new(move |m| c.encode(m))
            }),
            (BatchCodec::hamming84(), {
                let c = Hamming84::new();
                Box::new(move |m| c.encode(m))
            }),
            (BatchCodec::rm13(), {
                let c = Rm13::new();
                Box::new(move |m| c.encode(m))
            }),
            (BatchCodec::repetition(4, 2), {
                let c = Repetition::new(4, 2);
                Box::new(move |m| c.encode(m))
            }),
            (BatchCodec::uncoded(4), {
                let c = Uncoded::new(4);
                Box::new(move |m| c.encode(m))
            }),
        ];
        for (codec, scalar) in cases {
            let messages = random_messages(codec.k(), 130, 7);
            let batch = BitSlice64::pack(&messages);
            let encoded = codec.encode_batch(&batch).unpack();
            for (m, cw) in messages.iter().zip(&encoded) {
                assert_eq!(cw, &scalar(m), "{}", codec.name());
            }
        }
    }

    #[test]
    fn syndrome_batch_matches_scalar() {
        let code = Hamming84::new();
        let codec = BatchCodec::hamming84();
        let mut rng = StdRng::seed_from_u64(11);
        let words: Vec<BitVec> = (0..100)
            .map(|_| BitVec::from_u64(8, rng.random_range(0..256)))
            .collect();
        let batch = BitSlice64::pack(&words);
        let syndromes = codec.syndrome_batch(&batch);
        for (i, w) in words.iter().enumerate() {
            assert_eq!(syndromes.extract(i), code.syndrome(w), "word {i}");
        }
    }

    #[test]
    fn decode_batch_roundtrips_clean_codewords() {
        let codec = BatchCodec::hamming84();
        let messages = random_messages(4, 96, 3);
        let batch = BitSlice64::pack(&messages);
        let decoded = codec.decode_batch(&codec.encode_batch(&batch));
        assert_eq!(decoded.flagged_count(), 0);
        assert_eq!(decoded.corrected_count(), 0);
        assert_eq!(decoded.messages.unpack(), messages);
    }

    #[test]
    fn decode_batch_corrects_single_errors_and_flags_doubles() {
        let codec = BatchCodec::hamming84();
        let messages = random_messages(4, 64, 9);
        let clean = codec.encode_batch(&BitSlice64::pack(&messages));
        // Message i gets a 1-bit error at position i % 8; messages 5 and 6
        // additionally get a second error (-> double, must be flagged).
        let mut received = clean.clone();
        for i in 0..64 {
            received.set(i, i % 8, !received.get(i, i % 8));
        }
        for &i in &[5usize, 6] {
            let pos = (i + 1) % 8;
            received.set(i, pos, !received.get(i, pos));
        }
        let decoded = codec.decode_batch(&received);
        for (i, message) in messages.iter().enumerate() {
            if i == 5 || i == 6 {
                assert!(decoded.is_flagged(i), "message {i} must be flagged");
            } else {
                assert!(!decoded.is_flagged(i));
                assert!(decoded.is_corrected(i));
                assert_eq!(decoded.messages.extract(i), *message, "message {i}");
            }
        }
        assert_eq!(decoded.flagged_count(), 2);
    }

    #[test]
    fn uncoded_codec_passes_everything_through() {
        let codec = BatchCodec::uncoded(4);
        let messages = random_messages(4, 70, 21);
        let batch = BitSlice64::pack(&messages);
        let encoded = codec.encode_batch(&batch);
        assert_eq!(encoded.unpack(), messages);
        let decoded = codec.decode_batch(&encoded);
        assert_eq!(decoded.flagged_count(), 0);
        assert_eq!(decoded.messages.unpack(), messages);
    }

    #[test]
    fn repetition_decode_matches_majority_vote() {
        let scalar = Repetition::new(2, 3);
        let codec = BatchCodec::repetition(2, 3);
        // All 64 possible received words of the (6,2) code.
        let words: Vec<BitVec> = (0u64..64).map(|w| BitVec::from_u64(6, w)).collect();
        let decoded = codec.decode_batch(&BitSlice64::pack(&words));
        for (i, w) in words.iter().enumerate() {
            let reference = scalar.decode(w);
            match reference.outcome {
                DecodeOutcome::DetectedUncorrectable => assert!(decoded.is_flagged(i)),
                _ => {
                    assert!(!decoded.is_flagged(i));
                    assert_eq!(Some(decoded.messages.extract(i)), reference.message);
                }
            }
        }
    }

    #[test]
    fn partial_last_limb_batches_are_handled() {
        let codec = BatchCodec::hamming74();
        for batch_size in [1usize, 63, 65, 127] {
            let messages = random_messages(4, batch_size, batch_size as u64);
            let clean = codec.encode_batch(&BitSlice64::pack(&messages));
            let mut received = clean.clone();
            if batch_size > 2 {
                received.set(batch_size - 1, 3, !received.get(batch_size - 1, 3));
            }
            let decoded = codec.decode_batch(&received);
            assert_eq!(decoded.messages.unpack().len(), batch_size);
            for (i, m) in messages.iter().enumerate() {
                assert_eq!(
                    decoded.messages.extract(i),
                    *m,
                    "batch {batch_size} msg {i}"
                );
            }
        }
    }

    #[test]
    fn codec_reports_code_parameters() {
        let codec = BatchCodec::hamming84();
        assert_eq!((codec.n(), codec.k()), (8, 4));
        assert!(codec.name().contains("Hamming(8,4)"));
    }

    #[test]
    fn column_flip_codes_compile_to_n_entries() {
        // ColumnFlip programs have exactly one entry per codeword position,
        // independent of the syndrome-space size.
        assert_eq!(BatchCodec::hamming74().program_len(), 7);
        assert_eq!(BatchCodec::hamming84().program_len(), 8);
        assert_eq!(BatchCodec::rm13().program_len(), 8);
        assert_eq!(BatchCodec::sec_ded(6).program_len(), 72);
        assert_eq!(BatchCodec::wide_hamming_85_64().program_len(), 85);
        // The r = 0 degenerate case has nothing to match, and the algebraic
        // BCH engine compiles no entries at all (scalar fallback).
        assert_eq!(BatchCodec::uncoded(4).program_len(), 0);
        assert_eq!(BatchCodec::bch().program_len(), 0);
        // General-class codes keep interrogated entries (correctable
        // syndromes only): the (8,4) factor-2 repetition code corrects
        // nothing (every disagreement is a tie), the (6,2) factor-3 code
        // corrects every nonzero syndrome.
        assert_eq!(BatchCodec::repetition(4, 2).program_len(), 0);
        assert_eq!(BatchCodec::repetition(2, 3).program_len(), 15);
    }

    #[test]
    fn scratch_reuse_across_codes_and_batch_sizes_is_bit_exact() {
        // One scratch + output pair threaded through decodes of different
        // codes and batch shapes must reproduce the allocating path exactly.
        let mut scratch = BatchScratch::new();
        let mut out = BatchDecoded::empty();
        let mut rng = StdRng::seed_from_u64(0x5C8A7C4);
        for codec in [
            BatchCodec::sec_ded(6),
            BatchCodec::hamming84(),
            BatchCodec::wide_hamming_85_64(),
            BatchCodec::hamming74(),
        ] {
            for batch_size in [5usize, 64, 131] {
                let words: Vec<BitVec> = (0..batch_size)
                    .map(|_| {
                        (0..codec.n())
                            .map(|_| rng.random::<u64>() & 1 == 1)
                            .collect::<BitVec>()
                    })
                    .collect();
                let batch = BitSlice64::pack(&words);
                let reference = codec.decode_batch(&batch);
                codec.decode_batch_with(&batch, &mut scratch, &mut out);
                assert_eq!(out.messages, reference.messages, "{}", codec.name());
                assert_eq!(out.codewords, reference.codewords, "{}", codec.name());
                assert_eq!(out.flagged, reference.flagged, "{}", codec.name());
                assert_eq!(out.corrected, reference.corrected, "{}", codec.name());
            }
        }
    }

    #[test]
    fn encode_into_reuses_buffers_bit_exactly() {
        let codec = BatchCodec::sec_ded(4);
        let mut buffer = BitSlice64::default();
        for (batch_size, seed) in [(130usize, 1u64), (7, 2), (64, 3)] {
            let messages: Vec<BitVec> = random_messages(16, batch_size, seed);
            let batch = BitSlice64::pack(&messages);
            codec.encode_batch_into(&batch, &mut buffer);
            assert_eq!(buffer, codec.encode_batch(&batch));
        }
    }

    #[test]
    fn secded_72_64_batch_corrects_singles_and_flags_doubles() {
        // The widest SEC-DED member: 72 lanes (beyond one u64 mask), 8
        // syndrome lanes. Messages are 64-bit, drawn from a seeded RNG.
        let codec = BatchCodec::sec_ded(6);
        assert_eq!((codec.n(), codec.k()), (72, 64));
        let mut rng = StdRng::seed_from_u64(0x7264);
        let messages: Vec<BitVec> = (0..130)
            .map(|_| BitVec::from_u64(64, rng.random::<u64>()))
            .collect();
        let clean = codec.encode_batch(&BitSlice64::pack(&messages));

        // Clean round trip.
        let decoded = codec.decode_batch(&clean);
        assert_eq!(decoded.flagged_count(), 0);
        assert_eq!(decoded.messages.unpack(), messages);

        // One error per word: corrected. Words 10 and 100 get a second
        // error: flagged.
        let mut received = clean.clone();
        for i in 0..130 {
            let pos = rng.random_range(0..72usize);
            received.set(i, pos, !received.get(i, pos));
            if i == 10 || i == 100 {
                let second = (pos + 1 + rng.random_range(0..70usize)) % 72;
                received.set(i, second, !received.get(i, second));
            }
        }
        let decoded = codec.decode_batch(&received);
        for (i, message) in messages.iter().enumerate() {
            if i == 10 || i == 100 {
                assert!(decoded.is_flagged(i), "word {i} must be flagged");
            } else {
                assert!(decoded.is_corrected(i), "word {i}");
                assert_eq!(decoded.messages.extract(i), *message, "word {i}");
            }
        }
        assert_eq!(decoded.flagged_count(), 2);
    }

    #[test]
    fn secded_batch_matches_scalar_for_whole_family() {
        for m in 3..=6 {
            let scalar = SecDed::new(m);
            let codec = BatchCodec::sec_ded(m);
            let mut rng = StdRng::seed_from_u64(m as u64);
            let k = scalar.k();
            let messages: Vec<BitVec> = (0..64)
                .map(|_| {
                    (0..k)
                        .map(|_| rng.random::<u64>() & 1 == 1)
                        .collect::<BitVec>()
                })
                .collect();
            let encoded = codec.encode_batch(&BitSlice64::pack(&messages));
            for (i, msg) in messages.iter().enumerate() {
                assert_eq!(encoded.extract(i), scalar.encode(msg), "m={m} word {i}");
            }
        }
    }

    #[test]
    fn shortened_hamming_3832_works_in_batch_form() {
        // Exercises 6 syndrome lanes and 38-bit words through the ColumnFlip
        // builder.
        let scalar = ecc::ShortenedHamming3832::new();
        let codec = BatchCodec::new(&scalar);
        let mut rng = StdRng::seed_from_u64(5);
        let messages: Vec<BitVec> = (0..64)
            .map(|_| BitVec::from_u64(32, rng.random::<u64>() & 0xFFFF_FFFF))
            .collect();
        let clean = codec.encode_batch(&BitSlice64::pack(&messages));
        let mut received = clean.clone();
        for i in 0..64 {
            let pos = rng.random_range(0..38usize);
            received.set(i, pos, !received.get(i, pos));
        }
        let decoded = codec.decode_batch(&received);
        for (i, m) in messages.iter().enumerate() {
            assert!(!decoded.is_flagged(i));
            assert_eq!(decoded.messages.extract(i), *m, "msg {i}");
        }
    }

    #[test]
    fn bch_codec_roundtrips_and_corrects_up_to_two_errors() {
        let scalar = Bch::bch_31_16();
        let codec = BatchCodec::bch();
        assert_eq!((codec.n(), codec.k()), (31, 16));
        assert!(codec.name().contains("BCH(31,16)"));
        let mut rng = StdRng::seed_from_u64(0x3116);
        let messages: Vec<BitVec> = (0..130)
            .map(|_| BitVec::from_u64(16, rng.random_range(0..1 << 16)))
            .collect();
        let clean = codec.encode_batch(&BitSlice64::pack(&messages));
        for (i, msg) in messages.iter().enumerate() {
            assert_eq!(clean.extract(i), scalar.encode(msg), "word {i}");
        }

        // Clean round trip: every limb short-circuits.
        let decoded = codec.decode_batch(&clean);
        assert_eq!(decoded.flagged_count(), 0);
        assert_eq!(decoded.corrected_count(), 0);
        assert_eq!(decoded.messages.unpack(), messages);

        // Word i gets (i % 3) errors: 0 clean, 1 single, 2 double — all
        // recovered; words 7 and 80 get a triple — flagged.
        let mut received = clean.clone();
        for i in 0..130 {
            let errors = if i == 7 || i == 80 { 3 } else { i % 3 };
            let mut hit = Vec::new();
            while hit.len() < errors {
                let pos = rng.random_range(0..31usize);
                if !hit.contains(&pos) {
                    hit.push(pos);
                    received.set(i, pos, !received.get(i, pos));
                }
            }
        }
        let decoded = codec.decode_batch(&received);
        for (i, message) in messages.iter().enumerate() {
            if i == 7 || i == 80 {
                assert!(decoded.is_flagged(i), "word {i} must be flagged");
            } else {
                assert!(!decoded.is_flagged(i), "word {i}");
                assert_eq!(decoded.is_corrected(i), i % 3 != 0, "word {i}");
                assert_eq!(decoded.messages.extract(i), *message, "word {i}");
            }
        }
        assert_eq!(decoded.flagged_count(), 2);
    }

    #[test]
    fn bch_scratch_reuse_is_bit_exact() {
        let codec = BatchCodec::bch();
        let mut scratch = BatchScratch::new();
        let mut out = BatchDecoded::empty();
        let mut rng = StdRng::seed_from_u64(0xFA11_BACC);
        for batch_size in [3usize, 64, 131] {
            let words: Vec<BitVec> = (0..batch_size)
                .map(|_| {
                    (0..31)
                        .map(|_| rng.random::<u64>() & 1 == 1)
                        .collect::<BitVec>()
                })
                .collect();
            let batch = BitSlice64::pack(&words);
            let reference = codec.decode_batch(&batch);
            codec.decode_batch_with(&batch, &mut scratch, &mut out);
            assert_eq!(out.messages, reference.messages);
            assert_eq!(out.codewords, reference.codewords);
            assert_eq!(out.flagged, reference.flagged);
            assert_eq!(out.corrected, reference.corrected);
        }
    }

    #[test]
    #[should_panic(expected = "scalar fallback")]
    fn algebraic_decoders_reject_the_plain_constructor() {
        let _ = BatchCodec::new(&Bch::bch_31_16());
    }

    #[test]
    fn wide_hamming_85_64_roundtrips_beyond_the_old_redundancy_limit() {
        // n - k = 21 > 20: impossible under the old syndrome-action table
        // (its 2^21-entry build was rejected); the column-matching engine
        // compiles 85 entries and decodes exactly like the scalar path.
        let scalar = ShortenedHamming::wide_85_64();
        let codec = BatchCodec::wide_hamming_85_64();
        assert_eq!((codec.n(), codec.k()), (85, 64));
        let mut rng = StdRng::seed_from_u64(0x8564);
        let messages: Vec<BitVec> = (0..100)
            .map(|_| BitVec::from_u64(64, rng.random::<u64>()))
            .collect();
        let clean = codec.encode_batch(&BitSlice64::pack(&messages));
        let decoded = codec.decode_batch(&clean);
        assert_eq!(decoded.flagged_count(), 0);
        assert_eq!(decoded.messages.unpack(), messages);

        // Single errors are corrected; a parity-pair double is flagged by
        // both paths.
        let mut received = clean.clone();
        for i in 0..100 {
            let pos = rng.random_range(0..85usize);
            received.set(i, pos, !received.get(i, pos));
        }
        let decoded = codec.decode_batch(&received);
        for (i, m) in messages.iter().enumerate() {
            let scalar_decoded = scalar.decode(&received.extract(i));
            assert_eq!(Some(decoded.messages.extract(i)), scalar_decoded.message);
            assert_eq!(decoded.messages.extract(i), *m, "msg {i}");
        }
    }
}
