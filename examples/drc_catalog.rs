//! CI gate: run the SFQ design-rule checks over every catalog netlist the
//! synthesis pipeline produces, so a broken pass fails fast with the design
//! and violation attached instead of surfacing as a subtle Fig. 5 shift.
//!
//! Run with `cargo run --release --example drc_catalog`; exits non-zero on
//! any violation.

use sfq_ecc::cells::CellLibrary;
use sfq_ecc::encoders::EncoderDesign;
use sfq_ecc::netlist::drc;

fn main() {
    let library = CellLibrary::coldflux();
    let mut failed = false;
    for design in EncoderDesign::build_catalog() {
        let violations = drc::check(design.netlist());
        let stats = design.stats(&library);
        if violations.is_empty() {
            println!(
                "ok   {:<22} {:>5} cells {:>5} JJ depth {}",
                design.name(),
                stats.histogram.total(),
                stats.cost.jj_count,
                design.latency()
            );
        } else {
            failed = true;
            eprintln!(
                "FAIL {:<22} {} violations:",
                design.name(),
                violations.len()
            );
            for violation in violations {
                eprintln!("     {violation:?}");
            }
        }
    }
    if failed {
        eprintln!("catalog DRC failed");
        std::process::exit(1);
    }
    println!("catalog DRC clean");
}
