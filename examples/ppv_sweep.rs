//! Fig. 5 reproduction: the Monte-Carlo evaluation of all encoders under
//! process parameter variations.
//!
//! Run with `cargo run --release --example ppv_sweep [chips] [messages]`
//! (defaults: 1000 chips x 100 messages, the paper's setup).

use sfq_ecc::cells::CellLibrary;
use sfq_ecc::link::montecarlo::paper_zero_error_probabilities;
use sfq_ecc::link::Fig5Experiment;

fn main() {
    let chips: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let messages: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);

    let library = CellLibrary::coldflux();
    let experiment = Fig5Experiment {
        chips,
        messages_per_chip: messages,
        ..Fig5Experiment::paper_setup()
    };

    println!(
        "Fig. 5 Monte-Carlo: {} chips x {} messages, spread ±{:.0}%, margin scale {:.3}",
        experiment.chips,
        experiment.messages_per_chip,
        experiment.ppv.spread * 100.0,
        experiment.ppv.margin_scale
    );
    println!();

    let result = experiment.run_all(&library);
    println!("{}", result.to_table());

    println!("probability of zero erroneous messages out of {messages}:");
    let paper = paper_zero_error_probabilities();
    for (kind, measured) in result.zero_error_summary() {
        let reference = paper
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, p)| *p)
            .unwrap_or(f64::NAN);
        println!(
            "  {:<22} measured {:>6.1}%   (paper: {:>5.1}%)",
            format!("{kind:?}"),
            measured * 100.0,
            reference * 100.0
        );
    }
    println!();
    println!("mean erroneous messages per chip:");
    for curve in &result.curves {
        println!("  {:<22} {:.2}", curve.name, curve.mean_errors());
    }
}
