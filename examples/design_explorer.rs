//! Design explorer: regenerates Table I (code capabilities) and Table II
//! (circuit-level costs) and prints the per-output structure of each encoder.
//!
//! Run with `cargo run --example design_explorer`.

use sfq_ecc::cells::CellLibrary;
use sfq_ecc::ecc::analysis::{paper_table1, table1_row};
use sfq_ecc::ecc::{Hamming74, Hamming84, Rm13};
use sfq_ecc::encoders::{paper_table2, table2_rows, EncoderDesign, EncoderKind};

fn main() {
    println!("=== Table I: number of detected and corrected errors ===");
    println!(
        "{:<14} {:>4} | {:>13} {:>13} | {:>12} {:>12} | {:>10}",
        "code", "dmin", "worst detect", "worst correct", "best detect", "best correct", "w3 caught"
    );
    let computed = vec![
        table1_row(&Hamming74::new()),
        table1_row(&Hamming84::new()),
        table1_row(&Rm13::new()),
    ];
    for row in &computed {
        println!(
            "{:<14} {:>4} | {:>13} {:>13} | {:>12} {:>12} | {:>9.0}%",
            row.code,
            row.dmin,
            row.worst_detected,
            row.worst_corrected,
            row.best_detected,
            row.best_corrected,
            row.weight3_detection_rate * 100.0
        );
    }
    println!();
    println!("paper's Table I values for comparison:");
    for row in paper_table1() {
        println!(
            "{:<14} {:>4} | {:>13} {:>13} | {:>12} {:>12}",
            row.code,
            row.dmin,
            row.worst_detected,
            row.worst_corrected,
            row.best_detected,
            row.best_corrected
        );
    }

    println!();
    println!("=== Table II: circuit-level comparison ===");
    let library = CellLibrary::coldflux();
    for (ours, paper) in table2_rows(&library).iter().zip(paper_table2()) {
        println!("computed: {}", ours.format());
        println!("paper:    {}", paper.format());
    }

    println!();
    println!("=== Encoder structure ===");
    for kind in [
        EncoderKind::Hamming84,
        EncoderKind::Hamming74,
        EncoderKind::Rm13,
    ] {
        let design = EncoderDesign::build(kind);
        let stats = design.stats(&library);
        println!(
            "{:<22} logic depth {} | {} | bias current {:.1} mA",
            design.name(),
            stats.logic_depth,
            stats.histogram,
            stats.cost.bias_current_ma
        );
    }
}
