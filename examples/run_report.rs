//! Structured run report: exercises the batched Fig. 5 Monte-Carlo driver
//! and the synthesis planner with telemetry recording, then writes the
//! merged metrics snapshot — fingerprint, batch-decoder bucket statistics,
//! per-chip latency percentiles, per-worker utilization, Fig. 5 zero-error
//! rate with its Wilson interval, and per-pass synthesis timings — to
//! `RUN_REPORT.json` at the workspace root.
//!
//! Run with `cargo run --example run_report`. The emitted document is
//! validated with the telemetry crate's own JSON parser before it is
//! written, and CI re-validates the artifact it uploads. Without the
//! default `telemetry` feature the example still runs and emits a valid
//! (mostly empty) report — instrumentation never influences results.

use sfq_ecc::cells::CellLibrary;
use sfq_ecc::encoders::{EncoderDesign, EncoderKind};
use sfq_ecc::link::{Fig5Curve, Fig5Experiment};
use sfq_telemetry::json::JsonWriter;
use sfq_telemetry::{Fingerprint, Snapshot};

/// Chips in the report's Monte-Carlo run. Small enough to finish in
/// seconds; large enough that the Wilson interval is meaningful and every
/// worker gets a few chips.
const CHIPS: usize = 200;

fn write_report(fingerprint: &Fingerprint, curve: &Fig5Curve, snapshot: &Snapshot) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();

    w.key("fingerprint");
    fingerprint.write_json(&mut w);

    w.key("fig5");
    w.begin_object();
    w.key("design");
    w.string(&curve.name);
    w.key("chips");
    w.uint(curve.errors_per_chip.len() as u64);
    w.key("messages_per_chip");
    w.uint(curve.messages_per_chip as u64);
    w.key("zero_error_rate");
    w.float(curve.zero_error_probability());
    let (lo, hi) = curve.zero_error_wilson_interval(1.96);
    w.key("zero_error_wilson_95");
    w.begin_array();
    w.float(lo);
    w.float(hi);
    w.end_array();
    w.key("parallelism");
    w.begin_object();
    w.key("threads");
    w.uint(curve.parallelism.threads as u64);
    w.key("chips_per_worker");
    w.begin_array();
    for &chips in &curve.parallelism.chips_per_worker {
        w.uint(chips as u64);
    }
    w.end_array();
    w.key("utilization");
    w.begin_array();
    for u in curve.parallelism.utilization() {
        w.float(u);
    }
    w.end_array();
    w.end_object();
    w.end_object();

    w.key("metrics");
    snapshot.write_json(&mut w);

    w.end_object();
    w.finish()
}

fn main() {
    let registry = sfq_telemetry::global();
    registry.reset();

    // Synthesis leg: building a SEC-DED(72,64) encoder drives the planner,
    // the pass pipeline, and the cancellation-aware factoring memo cache,
    // populating the synth.* metrics.
    let library = CellLibrary::coldflux();
    let design = EncoderDesign::build(EncoderKind::SecDed(6));
    println!(
        "synthesized {} ({} JJ)",
        design.name(),
        design.stats(&library).cost.jj_count
    );

    // Monte-Carlo leg: a reduced batched Fig. 5 run over the Hamming(8,4)
    // link populates the batch.decode.*, link.*, and fig5.* metrics.
    let experiment = Fig5Experiment {
        chips: CHIPS,
        ..Fig5Experiment::paper_setup()
    };
    let fig5_design = EncoderDesign::build(EncoderKind::Hamming84);
    let curve = experiment.run_design_batched(&fig5_design, &library);
    let (lo, hi) = curve.zero_error_wilson_interval(1.96);
    println!(
        "fig5 {}: zero-error rate {:.3} (95% Wilson [{:.3}, {:.3}]) over {} chips, {} workers",
        curve.name,
        curve.zero_error_probability(),
        lo,
        hi,
        curve.errors_per_chip.len(),
        curve.parallelism.threads,
    );

    let fingerprint = Fingerprint::new(
        "hamming(8,4)+secded(72,64)",
        experiment.chips,
        experiment.messages_per_chip,
        experiment.seed,
        experiment.threads,
    );
    println!("{}", fingerprint.line());

    let snapshot = registry.snapshot();
    println!();
    println!("{}", snapshot.to_table());

    let report = write_report(&fingerprint, &curve, &snapshot);
    sfq_telemetry::json::validate(&report).expect("RUN_REPORT.json validates");

    let out = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("RUN_REPORT.json");
    std::fs::write(&out, &report).expect("write RUN_REPORT.json");
    println!("wrote {} ({} bytes)", out.display(), report.len());
}
