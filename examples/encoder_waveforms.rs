//! Fig. 3 reproduction: waveforms of the Hamming(8,4) encoder at 5 GHz with
//! 4.2 K thermal noise, for the paper's stimulus message `1011`.
//!
//! Run with `cargo run --example encoder_waveforms [message_bits]`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sfq_ecc::encoders::{EncoderDesign, EncoderKind};
use sfq_ecc::gf2::BitVec;
use sfq_ecc::link::waveform::{render_waveforms, WaveformConfig};

fn main() {
    let message_str = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "1011".to_string());
    let message = BitVec::from_str01(&message_str);
    assert_eq!(message.len(), 4, "message must be 4 bits");

    let encoder = EncoderDesign::build(EncoderKind::Hamming84);
    let codeword = encoder.encode_gate_level(&message);
    let config = WaveformConfig::fig3();
    let mut rng = StdRng::seed_from_u64(42);
    let waveforms = render_waveforms(&encoder, &message, &config, &mut rng);

    println!(
        "Hamming(8,4) encoder at {} GHz, message {message} -> codeword {codeword}",
        config.clock_ghz
    );
    println!(
        "clock period {} ps, SFQ pulse width {:.1} ps, thermal noise {:.0} uV rms",
        config.clock_period_ps(),
        config.pulse_width_ps,
        config.noise_rms_uv
    );
    println!();
    println!(
        "time axis: 0 .. {:.0} ps ('|' = pulse, '.' = noise)",
        waveforms.duration_ps
    );
    print!("{}", waveforms.to_ascii(72));
    println!();

    // The quantitative claim of Fig. 3: codeword bits appear after two clock
    // cycles (0.4 ns for the 5 GHz clock).
    for name in ["c1", "c2", "c3", "c4", "c5", "c6", "c7", "c8"] {
        let series = waveforms.series_named(name).expect("series exists");
        match series.first_pulse_ps(config.output_amplitude_uv, config.sample_ps) {
            Some(t) => println!("{name}: first pulse at {:.0} ps", t),
            None => println!("{name}: no pulse (bit is 0)"),
        }
    }
}
