//! Quickstart: encode a 4-bit message with each of the paper's encoders,
//! inject a channel error, and decode it back.
//!
//! Run with `cargo run --example quickstart`.

use sfq_ecc::encoders::{EncoderDesign, EncoderKind};
use sfq_ecc::gf2::BitVec;

fn main() {
    let message = BitVec::from_str01("1011");
    println!("message: {message}");
    println!();

    for kind in [
        EncoderKind::Hamming84,
        EncoderKind::Hamming74,
        EncoderKind::Rm13,
    ] {
        let encoder = EncoderDesign::build(kind);

        // Encode twice: once through the reference generator matrix and once
        // by simulating the SFQ circuit gate by gate. They must agree.
        let reference = encoder.encode_reference(&message);
        let simulated = encoder.encode_gate_level(&message);
        assert_eq!(reference, simulated);

        // Flip one bit on the cryogenic cable and decode at the CMOS side.
        let mut received = simulated.clone();
        received.flip(2);
        let decoded = encoder.decode(&received);

        println!("{}", encoder.name());
        println!("  codeword (gate-level sim): {simulated}");
        println!("  received with 1 bit error: {received}");
        println!(
            "  decoded message:           {} ({:?})",
            decoded
                .message
                .as_ref()
                .map_or("-".to_string(), BitVec::to_string01),
            decoded.outcome
        );
        println!(
            "  latency: {} clock cycles, {} output channels",
            encoder.latency(),
            encoder.n()
        );
        println!();
    }
}
