//! Demo of the bit-sliced batch link: runs a reduced Fig. 5 experiment
//! through both the pulse-level scalar path and the `sfq-batch` driver and
//! compares the resulting curves and runtimes.
//!
//! ```text
//! cargo run --release --example batch_link
//! ```

use sfq_ecc::cells::CellLibrary;
use sfq_ecc::encoders::EncoderKind;
use sfq_ecc::link::Fig5Experiment;
use std::time::Instant;

fn main() {
    let library = CellLibrary::coldflux();
    // `paper_setup` already defaults `threads` to the machine's available
    // parallelism; results are bit-identical for any thread count.
    let experiment = Fig5Experiment {
        chips: 400,
        messages_per_chip: 100,
        ..Fig5Experiment::paper_setup()
    };

    println!(
        "Fig. 5, {} chips x {} messages, +/-{:.0}% spread, {} worker threads",
        experiment.chips,
        experiment.messages_per_chip,
        experiment.ppv.spread * 100.0,
        experiment.threads
    );
    println!();

    let start = Instant::now();
    let scalar = experiment.run_all(&library);
    let scalar_time = start.elapsed();

    let start = Instant::now();
    let batched = experiment.run_all_batched(&library);
    let batched_time = start.elapsed();

    println!(
        "{:<24} {:>14} {:>14}",
        "design", "scalar P(N=0)", "batch P(N=0)"
    );
    for kind in EncoderKind::ALL {
        let s = scalar.curve(kind).expect("scalar curve");
        let b = batched.curve(kind).expect("batched curve");
        println!(
            "{:<24} {:>13.1}% {:>13.1}%",
            s.name,
            s.zero_error_probability() * 100.0,
            b.zero_error_probability() * 100.0
        );
    }
    println!();
    println!(
        "scalar (pulse-level) path: {:>8.2?}   batch path: {:>8.2?}   ({:.1}x faster)",
        scalar_time,
        batched_time,
        scalar_time.as_secs_f64() / batched_time.as_secs_f64()
    );
    println!();
    println!("The scalar path replays every pulse through the faulty netlist and");
    println!("remains the reference oracle; the batch path condenses each chip's");
    println!("fault map into correlated per-faulty-cell error sources and drives");
    println!("the bit-sliced codec (64 codewords per u64 limb) from sfq-batch.");
}
