//! End-to-end demo of the Fig. 1 cryogenic output data link: a faulty chip
//! (sampled under ±20 % PPV), the cryo cable, the CMOS receiver, and the
//! decoder with its error flags.
//!
//! Run with `cargo run --example link_demo [seed]`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfq_ecc::cells::CellLibrary;
use sfq_ecc::encoders::{EncoderDesign, EncoderKind};
use sfq_ecc::gf2::BitVec;
use sfq_ecc::link::{ChannelConfig, CryoLink, LinkOutcome};
use sfq_ecc::sim::PpvModel;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2025);
    let library = CellLibrary::coldflux();
    let model = PpvModel::paper_defaults();
    let mut rng = StdRng::seed_from_u64(seed);

    println!(
        "sampling one fabricated chip per encoder at ±{:.0}% spread (seed {seed})",
        model.spread * 100.0
    );
    println!();

    for kind in EncoderKind::ALL {
        let design = EncoderDesign::build(kind);
        let chip = model.sample_chip(design.netlist(), &library, &mut rng);
        println!(
            "{:<22} {} faulty cells ({} hard, {} marginal)",
            design.name(),
            chip.faults.faulty_count(),
            chip.hard_failures,
            chip.marginal_cells
        );
        let link = CryoLink::new(&design, chip.faults, ChannelConfig::ideal());

        let mut correct = 0;
        let mut flagged = 0;
        let mut silent = 0;
        let transmissions = 100;
        for _ in 0..transmissions {
            let message = BitVec::from_u64(4, rng.random_range(0..16));
            match link.transmit(&message, &mut rng).outcome {
                LinkOutcome::Correct => correct += 1,
                LinkOutcome::Flagged => flagged += 1,
                LinkOutcome::SilentError => silent += 1,
            }
        }
        println!(
            "    {transmissions} messages: {correct} correct, {flagged} flagged by the error flag, {silent} silently wrong"
        );
        println!();
    }
}
