//! Recomputes the PPV margin-scale calibration against the paper's anchor
//! point: the uncoded 4-bit link delivers 100 messages error-free with
//! probability 80.0 % at ±20 % spread (Fig. 5, "no encoder" curve).
//!
//! The resulting scale is baked into `PpvModel::paper_defaults()`; run this
//! example after changing the fault model, the cell library, or the RNG to
//! refresh that constant:
//!
//! ```text
//! cargo run --release --example calibrate
//! ```

use sfq_ecc::cells::CellLibrary;
use sfq_ecc::link::calibrate::calibrate_margin_scale;
use sfq_ecc::sim::PpvModel;

fn main() {
    let library = CellLibrary::coldflux();
    let base = PpvModel::paper_defaults().with_margin_scale(1.0);
    println!("calibrating margin scale to the 80% uncoded anchor (1000 chips x 100 messages)...");
    let cal = calibrate_margin_scale(&library, base, 0.80, 1000, 100, 0x5f5_ecc);
    println!(
        "margin_scale = {:.4}  (uncoded zero-error probability {:.3}, target {:.3})",
        cal.margin_scale, cal.achieved, cal.target
    );
    println!(
        "current paper_defaults margin_scale = {:.4}",
        PpvModel::paper_defaults().margin_scale
    );
}
