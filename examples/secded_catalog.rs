//! Tour of the parameterized code catalog: synthesizes every SEC-DED family
//! member next to the paper's encoders, prints their Table-II-style circuit
//! costs, and runs the wide (72,64) memory-word link through both the
//! pulse-level scalar path and the bit-sliced batch path.
//!
//! ```text
//! cargo run --release --example secded_catalog
//! ```

use sfq_ecc::cells::CellLibrary;
use sfq_ecc::encoders::{catalog_table_rows, EncoderDesign, EncoderKind};
use sfq_ecc::link::{wilson_interval, Fig5Experiment};
use std::time::Instant;

fn main() {
    let library = CellLibrary::coldflux();

    println!("=== Code catalog: Table-II-style circuit costs ===");
    println!("(every design synthesized by the sfq-netlist pass pipeline)");
    for row in catalog_table_rows(&library) {
        println!("{}", row.format());
    }
    println!();

    println!("=== Wide-word scenario: SEC-DED(72,64) over the cryo link ===");
    let experiment = Fig5Experiment::wide_word_setup();
    println!(
        "{} chips x {} 64-bit words, +/-{:.0}% spread",
        experiment.chips,
        experiment.messages_per_chip,
        experiment.ppv.spread * 100.0
    );
    let design = EncoderDesign::build(EncoderKind::SecDed(6));
    println!(
        "netlist: {} cells, logic depth {}",
        design.netlist().nodes().len(),
        design.latency()
    );

    let start = Instant::now();
    let scalar = experiment.run_design(&design, &library);
    let scalar_time = start.elapsed();
    let start = Instant::now();
    let batched = experiment.run_design_batched(&design, &library);
    let batched_time = start.elapsed();

    for (label, curve, time) in [
        ("scalar (pulse-level)", &scalar, scalar_time),
        ("batched (bit-sliced)", &batched, batched_time),
    ] {
        let (lo, hi) = curve.zero_error_wilson_interval(1.96);
        println!(
            "{label:<22} zero-error {:.3}  (95% Wilson [{lo:.3}, {hi:.3}])  mean errs/chip {:.2}  in {time:?}",
            curve.zero_error_probability(),
            curve.mean_errors(),
        );
    }
    let (s_lo, s_hi) = scalar.zero_error_wilson_interval(1.96);
    let (b_lo, b_hi) = batched.zero_error_wilson_interval(1.96);
    assert!(
        s_lo <= b_hi && b_lo <= s_hi,
        "scalar and batched curves should agree within Monte-Carlo error"
    );
    println!();
    println!(
        "sanity: wilson_interval(72, 80, 1.96) = {:?}",
        wilson_interval(72, 80, 1.96)
    );
}
