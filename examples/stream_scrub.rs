//! Online scrubbing service demo: the latency contract at nominal load,
//! graceful degradation under a 1.5× overload window, and a faulted run
//! with stalls, clock-tree bursts, and poisoned batches.
//!
//! Run with `cargo run --release --example stream_scrub`.

use sfq_ecc::stream::{Fault, FaultScript, ScrubService, StreamConfig};

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn main() {
    ScrubService::check_environment().expect("SFQ_BATCH_KERNEL must be valid");
    let nominal = StreamConfig::nominal();
    println!(
        "scrub service: SEC-DED(m={}), {} messages/batch, {} shards, {} workers, \
         {} batches/1024 cycles against a capacity of {}, budget {} cycles",
        nominal.secded_m,
        nominal.batch_messages,
        nominal.shards,
        nominal.threads,
        nominal.arrivals_per_1024,
        nominal.capacity_per_1024(),
        nominal.cycle_budget
    );

    banner("nominal load, no faults");
    let report = ScrubService::run(&nominal, &FaultScript::quiet());
    report.validate().expect("contract held");
    println!("{}", report.to_json(""));

    banner("1.5x overload window (cycles 8192..40960)");
    let overload = FaultScript::quiet().with(
        8192,
        Fault::RateSpike {
            factor_milli: 1500,
            duration: 32768,
        },
    );
    let report = ScrubService::run(&nominal, &overload);
    report
        .validate()
        .expect("degraded gracefully and recovered");
    for t in &report.transitions {
        println!("cycle {:>6}: {} -> {}", t.cycle, t.from.name(), t.to.name());
    }
    println!("{}", report.to_json(""));

    banner("fault soak: stalls + bursts + poisoned batches");
    let soak = FaultScript::soak_mix(nominal.total_cycles, nominal.shards, 3);
    let report = ScrubService::run(&nominal, &soak);
    report.validate().expect("faults absorbed");
    println!("{}", report.to_json(""));
}
