//! The `depth_slack` latency/area Pareto sweep of every catalog code, plus a
//! demonstration that the schedule planner is genuinely cost-model-driven:
//! two cell libraries with different XOR/DFF cost ratios pick different
//! factoring schedules for the same generator matrix.
//!
//! Run with `cargo run --release --example pareto_sweep`.

use sfq_ecc::cells::{CellKind, CellLibrary, CellParams};
use sfq_ecc::encoders::EncoderKind;
use sfq_ecc::gf2::BitMat;
use sfq_ecc::netlist::pass::{InputDiscipline, PipelineOptions, SynthPlanner};

const MAX_SLACK: usize = 3;

fn main() {
    let library = CellLibrary::coldflux();

    println!("latency/area Pareto sweep (ColdFlux library, slack 0..={MAX_SLACK})");
    println!("{:-<98}", "");
    for kind in EncoderKind::catalog() {
        if kind == EncoderKind::None {
            continue;
        }
        println!("{}", kind.name());
        for point in kind.pareto_sweep(&library, MAX_SLACK) {
            println!(
                "  slack {}  {:<15} depth {}  {:>4} XOR {:>4} DFF {:>4} SPL | {:>5} JJ {}",
                point.depth_slack,
                point.schedule.label(),
                point.planned.depth,
                point.planned.xor,
                point.planned.dff,
                point.planned.splitter,
                point.jj,
                if point.on_front { "  <- front" } else { "" },
            );
        }
    }

    // The cost-driven planner in action: an Align-discipline system whose
    // Paar and cancellation schedules trade XOR gates against alignment
    // DFFs, so the cheapest schedule depends on the library's cost ratios.
    println!();
    println!("cost-model-driven schedule selection");
    println!("{:-<98}", "");
    let generator = BitMat::from_str_rows(&["1100100", "1000110", "0011101", "1011100", "1101111"]);
    let options = PipelineOptions {
        discipline: InputDiscipline::Align,
        ..Default::default()
    };
    let mut xor_heavy = CellLibrary::coldflux();
    xor_heavy.set_params(CellParams {
        jj_count: 150,
        ..xor_heavy.params(CellKind::Xor).clone()
    });
    for (name, lib) in [
        ("ColdFlux", &library),
        ("XOR-heavy (150 JJ/XOR)", &xor_heavy),
    ] {
        let plan = SynthPlanner::new(options, lib).plan(&generator);
        println!("{name}: chooses {}", plan.chosen.label());
        for candidate in &plan.candidates {
            println!(
                "  {:<15} {:>3} XOR {:>3} DFF {:>3} SPL | {:>5} JJ{}",
                candidate.schedule.label(),
                candidate.planned.xor,
                candidate.planned.dff,
                candidate.planned.splitter,
                candidate.jj,
                if candidate.schedule == plan.chosen {
                    "  <- chosen"
                } else {
                    ""
                },
            );
        }
    }
}
